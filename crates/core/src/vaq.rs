//! The end-to-end VAQ method (paper Algorithm 5): `VarPCA` →
//! subspace construction → partial balancing → adaptive bit allocation →
//! variable-sized dictionaries → TI partitioning → pruned query execution.

use crate::allocation::{AllocationConstraint, AllocationStrategy};
use crate::encoder::Encoder;
use crate::engine::{IndexView, QueryEngine};
use crate::pipeline::VarPcaStage;
use crate::search::{Neighbor, SearchStats, SearchStrategy};
use crate::subspaces::{SubspaceLayout, SubspaceMode};
use crate::ti::TiPartition;
use crate::VaqError;
use vaq_linalg::{Matrix, PackedCodes, Pca};

/// What ingress validation does with NaN/Inf values in training or
/// appended data (degenerate but *finite* data — constant dimensions,
/// duplicate rows — is handled by the pipeline's own fallbacks and never
/// rejected).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngressPolicy {
    /// Fail fast with [`VaqError::NonFinite`] naming the offending cell.
    #[default]
    Reject,
    /// Replace every NaN/Inf with `0.0` (recorded in the degradation log)
    /// and continue training.
    Sanitize,
}

/// Configuration for [`Vaq::train`].
#[derive(Debug, Clone)]
pub struct VaqConfig {
    /// Total bit budget per encoded vector (paper: 64–256).
    pub budget_bits: usize,
    /// Number of subspaces `m` (paper: 16–64).
    pub num_subspaces: usize,
    /// Minimum bits per subspace (paper default 1).
    pub min_bits: usize,
    /// Maximum bits per subspace (paper default 13).
    pub max_bits: usize,
    /// Uniform or clustered (non-uniform) subspace construction.
    pub subspace_mode: SubspaceMode,
    /// Whether to apply the partial importance-balancing swaps.
    pub partial_balance: bool,
    /// Adaptive (MILP) or uniform bit allocation.
    pub allocation: AllocationStrategy,
    /// Number of triangle-inequality clusters (paper: 1000). `0` disables
    /// the TI structure (EA-only queries). Clamped to the database size.
    pub ti_clusters: usize,
    /// Subspaces spanned by the TI prefix metric (clamped to `m`).
    pub ti_prefix_subspaces: usize,
    /// Default fraction of TI clusters visited per query (paper: 0.25 and
    /// 0.10).
    pub ti_visit_frac: f64,
    /// k-means iterations for dictionary learning.
    pub train_iters: usize,
    /// RNG seed (dictionaries, TI sampling).
    pub seed: u64,
    /// Extra constraints for the bit allocator (service agreements,
    /// supervised weights — see [`AllocationConstraint`]). Only honoured
    /// by the adaptive strategy.
    pub allocation_constraints: Vec<AllocationConstraint>,
    /// How [`Vaq::train`] treats NaN/Inf values in the input.
    pub ingress: IngressPolicy,
}

impl VaqConfig {
    /// The paper's defaults for a given budget and subspace count:
    /// 1..=13 bits per subspace, uniform subspaces with partial balancing,
    /// adaptive allocation, 1000 TI clusters, 25% visits.
    pub fn new(budget_bits: usize, num_subspaces: usize) -> Self {
        VaqConfig {
            budget_bits,
            num_subspaces,
            min_bits: 1,
            max_bits: 13,
            subspace_mode: SubspaceMode::Uniform,
            partial_balance: true,
            allocation: AllocationStrategy::Adaptive,
            ti_clusters: 1000,
            ti_prefix_subspaces: 8,
            ti_visit_frac: 0.25,
            train_iters: 25,
            seed: 0x5eed,
            allocation_constraints: Vec::new(),
            ingress: IngressPolicy::Reject,
        }
    }

    /// Switches to clustered (non-uniform) subspaces.
    pub fn clustered(mut self) -> Self {
        self.subspace_mode = SubspaceMode::Clustered;
        self
    }

    /// Switches to uniform bit allocation (ablation).
    pub fn uniform_allocation(mut self) -> Self {
        self.allocation = AllocationStrategy::Uniform;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the TI cluster count (0 disables data skipping).
    pub fn with_ti_clusters(mut self, c: usize) -> Self {
        self.ti_clusters = c;
        self
    }

    /// Overrides the default visit fraction.
    pub fn with_visit_frac(mut self, f: f64) -> Self {
        self.ti_visit_frac = f;
        self
    }

    /// Adds an allocation constraint (see [`AllocationConstraint`]).
    pub fn with_constraint(mut self, c: AllocationConstraint) -> Self {
        self.allocation_constraints.push(c);
        self
    }

    /// Overrides the NaN/Inf ingress policy (default: reject).
    pub fn with_ingress(mut self, policy: IngressPolicy) -> Self {
        self.ingress = policy;
        self
    }

    /// Checks the configuration's internal consistency, before any data
    /// is touched. [`Vaq::train`] calls this first, so a bad config fails
    /// fast with a descriptive [`VaqError`] instead of being silently
    /// clamped or surfacing mid-pipeline.
    pub fn validate(&self) -> Result<(), VaqError> {
        if self.num_subspaces == 0 {
            return Err(VaqError::BadConfig("num_subspaces must be positive".into()));
        }
        if self.min_bits == 0 || self.min_bits > self.max_bits || self.max_bits > 16 {
            return Err(VaqError::BadConfig(format!(
                "bit bounds {}..={} invalid (need 1 ≤ min ≤ max ≤ 16)",
                self.min_bits, self.max_bits
            )));
        }
        let m = self.num_subspaces;
        if self.budget_bits < m * self.min_bits || self.budget_bits > m * self.max_bits {
            return Err(VaqError::InfeasibleBudget {
                budget: self.budget_bits,
                subspaces: m,
                min_bits: self.min_bits,
                max_bits: self.max_bits,
            });
        }
        // Catches NaN too: a NaN fails both comparisons.
        if !(self.ti_visit_frac > 0.0 && self.ti_visit_frac <= 1.0) {
            return Err(VaqError::BadConfig(format!(
                "ti_visit_frac {} outside (0, 1]",
                self.ti_visit_frac
            )));
        }
        Ok(())
    }
}

/// A trained VAQ index.
#[derive(Debug, Clone)]
pub struct Vaq {
    pub(crate) pca: Pca,
    pub(crate) layout: SubspaceLayout,
    pub(crate) bits: Vec<usize>,
    pub(crate) encoder: Encoder,
    pub(crate) codes: Vec<u16>,
    pub(crate) n: usize,
    pub(crate) ti: Option<TiPartition>,
    pub(crate) default_strategy: SearchStrategy,
    /// Blocked/transposed codes of the ≤8-bit subspaces for the SIMD
    /// quantized scan. Derived from `codes` (rebuilt on load and append,
    /// never serialized); inactive when no subspace fits in 8 bits.
    pub(crate) packed: PackedCodes,
}

impl Vaq {
    /// Trains VAQ on the rows of `data` (paper Algorithm 5) by running the
    /// explicit stage chain in [`crate::pipeline`]: ingress validation →
    /// `VarPCA` → subspace plan → bit allocation → dictionaries → TI
    /// partition. Use the stages directly to fork mid-pipeline (e.g. one
    /// eigenbasis, many budgets); stage entry points always *reject*
    /// non-finite data — the `Sanitize` policy is applied here, before the
    /// chain starts.
    pub fn train(data: &Matrix, cfg: &VaqConfig) -> Result<Vaq, VaqError> {
        let sanitized = crate::pipeline::ingress_check(data, cfg)?;
        let data = sanitized.as_ref().unwrap_or(data);
        VarPcaStage::compute(data, cfg)?
            .plan_subspaces(cfg)?
            .allocate_bits(cfg)?
            .train_dictionaries(data, cfg)?
            .build_ti(cfg)
    }

    /// Number of encoded vectors.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Per-subspace bit allocation chosen by the optimizer.
    pub fn bits(&self) -> &[usize] {
        &self.bits
    }

    /// Total bits per encoded vector.
    pub fn code_bits(&self) -> usize {
        self.bits.iter().sum()
    }

    /// The derived subspace layout.
    pub fn layout(&self) -> &SubspaceLayout {
        &self.layout
    }

    /// The TI partition, if built.
    pub fn ti(&self) -> Option<&TiPartition> {
        self.ti.as_ref()
    }

    /// Projects a raw query into VAQ's permuted PC space. Errors when the
    /// query's dimensionality does not match the trained projection.
    pub fn project_query(&self, query: &[f32]) -> Result<Vec<f32>, VaqError> {
        Ok(self.pca.transform_vec(query)?)
    }

    /// A borrowed [`IndexView`] of the encoded database (codes + TI +
    /// blocked packing), ready for a [`QueryEngine`].
    pub fn view(&self) -> IndexView<'_> {
        IndexView::from_encoder(&self.encoder, &self.codes, self.n)
            .with_ti(self.ti.as_ref())
            .with_packed(Some(&self.packed))
    }

    /// A [`QueryEngine`] pre-sized for this index, defaulting to the
    /// trained strategy (TI + EA). Hold one per thread and reuse it across
    /// queries — after the first, table preparation allocates nothing.
    pub fn engine(&self) -> QueryEngine {
        QueryEngine::for_view(&self.view()).with_strategy(self.default_strategy)
    }

    /// Searches with the configured default strategy (TI + EA). Errors
    /// when the query's dimensionality does not match the index.
    pub fn search(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, VaqError> {
        Ok(self.search_with(query, k, self.default_strategy)?.0)
    }

    /// Batch search: answers every row of `queries`, sharding across
    /// threads (each query is independent; the index is shared read-only,
    /// each worker reuses one cloned engine for its whole shard). Returns
    /// per-query results plus work counters summed over the batch.
    pub fn search_batch(
        &self,
        queries: &Matrix,
        k: usize,
        strategy: SearchStrategy,
    ) -> Result<(Vec<Vec<Neighbor>>, SearchStats), VaqError> {
        if queries.rows() > 0 && queries.cols() != self.pca.dim() {
            return Err(VaqError::BadConfig(format!(
                "{}-dim queries against a {}-dim index",
                queries.cols(),
                self.pca.dim()
            )));
        }
        let view = self.view();
        let engine = QueryEngine::for_view(&view);
        // The dimension check above is the only way projection can fail,
        // and every row of a `Matrix` has the same width.
        Ok(engine.search_batch(&view, queries, k, strategy, |q| {
            self.project_query(q).unwrap_or_default()
        }))
    }

    /// Searches with an explicit strategy, returning work counters.
    ///
    /// Convenience wrapper that builds a fresh engine per call; query
    /// loops should hold a [`Vaq::engine`] and use [`Vaq::search_in`].
    pub fn search_with(
        &self,
        query: &[f32],
        k: usize,
        strategy: SearchStrategy,
    ) -> Result<(Vec<Neighbor>, SearchStats), VaqError> {
        let view = self.view();
        let mut engine = QueryEngine::for_view(&view);
        let projected = self.project_query(query)?;
        Ok(engine.search_with(&view, &projected, k, strategy))
    }

    /// Searches through a caller-held engine (zero table allocations in
    /// the steady state), with the engine's current strategy.
    pub fn search_in(
        &self,
        engine: &mut QueryEngine,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<Neighbor>, SearchStats), VaqError> {
        let view = self.view();
        let projected = self.project_query(query)?;
        let strategy = engine.strategy();
        Ok(engine.search_with(&view, &projected, k, strategy))
    }

    /// Appends new vectors to the encoded database without retraining.
    ///
    /// The dictionaries, subspace layout, and bit allocation stay fixed
    /// (the standard PQ-family regime: dictionaries are trained once on a
    /// sample and applied to the full collection). New codes are assigned
    /// to their nearest existing TI cluster and inserted in sorted
    /// position, so all pruning invariants keep holding.
    ///
    /// Returns the row index the first appended vector received.
    pub fn add(&mut self, data: &Matrix) -> Result<usize, VaqError> {
        if data.cols() != self.pca.dim() {
            return Err(VaqError::BadConfig(format!(
                "appended vectors have {} dims, index expects {}",
                data.cols(),
                self.pca.dim()
            )));
        }
        let first = self.n;
        let projected = self.pca.transform(data)?;
        let new_codes = self.encoder.encode_all(&projected);
        if let Some(ti) = &mut self.ti {
            let m = self.encoder.num_subspaces();
            for (j, code) in new_codes.chunks_exact(m).enumerate() {
                ti.insert(&self.encoder, code, (first + j) as u32);
            }
        }
        self.codes.extend_from_slice(&new_codes);
        self.n += data.rows();
        // The blocked layout is block-major, so earlier 32-vector blocks
        // never move on append: only the trailing partial block's padded
        // lanes and the new blocks are written — O(rows·m), independent
        // of how large the index already is. (`append` stays
        // byte-identical to a full repack, audit code VAQ110.)
        self.packed.append(
            &new_codes,
            &self.encoder.table_sizes().collect::<Vec<_>>(),
            data.rows(),
        );
        crate::obs::note_truncated_packing(&self.packed, "vaq.add");
        Ok(first)
    }

    /// The encoded code word of database row `i`.
    pub fn code(&self, i: usize) -> &[u16] {
        let m = self.encoder.num_subspaces();
        &self.codes[i * m..(i + 1) * m]
    }

    /// The encoder (dictionaries / ranges), for inspection.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// Total squared quantization error over the training data (requires
    /// re-projecting, so it takes the original data). Errors when `data`
    /// does not match the trained projection's dimensionality.
    pub fn quantization_error(&self, data: &Matrix) -> Result<f64, VaqError> {
        let projected = self.pca.transform(data)?;
        let mut err = 0.0f64;
        for i in 0..self.n.min(projected.rows()) {
            let rec = self.encoder.decode(self.code(i));
            err += vaq_linalg::squared_euclidean(projected.row(i), &rec) as f64;
        }
        Ok(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_dataset::{exact_knn, SyntheticSpec};
    use vaq_metrics::recall_at_k;

    #[test]
    fn trains_on_paper_configuration() {
        let ds = SyntheticSpec::sald_like().generate(800, 0, 1);
        let cfg = VaqConfig::new(256, 32).with_ti_clusters(64);
        let vaq = Vaq::train(&ds.data, &cfg).unwrap();
        assert_eq!(vaq.code_bits(), 256);
        assert_eq!(vaq.bits().len(), 32);
        assert_eq!(vaq.len(), 800);
        // Variable sizes on a steep spectrum.
        let distinct: std::collections::BTreeSet<usize> = vaq.bits().iter().copied().collect();
        assert!(distinct.len() >= 2, "bits {:?}", vaq.bits());
    }

    #[test]
    fn rejects_bad_inputs() {
        let ds = SyntheticSpec::deep_like().generate(100, 0, 2);
        assert!(Vaq::train(&Matrix::zeros(0, 8), &VaqConfig::new(16, 4)).is_err());
        assert!(Vaq::train(&ds.data, &VaqConfig::new(16, 0)).is_err());
        assert!(Vaq::train(&ds.data, &VaqConfig::new(16, 500)).is_err());
        // Infeasible budget.
        assert!(matches!(
            Vaq::train(&ds.data, &VaqConfig::new(2, 8)),
            Err(VaqError::InfeasibleBudget { .. })
        ));
    }

    #[test]
    fn self_query_finds_itself() {
        let ds = SyntheticSpec::sift_like().generate(500, 0, 3);
        let cfg = VaqConfig::new(64, 8).with_ti_clusters(32);
        let vaq = Vaq::train(&ds.data, &cfg).unwrap();
        let mut hits = 0;
        let probes: Vec<usize> = (0..500).step_by(31).collect();
        for &i in &probes {
            let res = vaq.search_with(ds.data.row(i), 10, SearchStrategy::FullScan).unwrap().0;
            if res.iter().any(|n| n.index == i as u32) {
                hits += 1;
            }
        }
        assert!(hits * 10 >= probes.len() * 8, "{hits}/{}", probes.len());
    }

    #[test]
    fn beats_uniform_allocation_on_skewed_data() {
        // The core claim (Figures 6, 9): adaptive allocation beats uniform
        // on data with skewed spectra, same budget.
        let ds = SyntheticSpec::sald_like().generate(1200, 40, 5);
        let truth = exact_knn(&ds.data, &ds.queries, 10);
        let run = |cfg: VaqConfig| -> f64 {
            let vaq = Vaq::train(&ds.data, &cfg).unwrap();
            let retrieved: Vec<Vec<u32>> = (0..ds.queries.rows())
                .map(|q| {
                    vaq.search_with(ds.queries.row(q), 10, SearchStrategy::FullScan)
                        .unwrap()
                        .0
                        .iter()
                        .map(|n| n.index)
                        .collect()
                })
                .collect();
            recall_at_k(&retrieved, &truth, 10)
        };
        let adaptive = run(VaqConfig::new(64, 16).with_ti_clusters(0));
        let uniform = run(VaqConfig::new(64, 16).with_ti_clusters(0).uniform_allocation());
        assert!(
            adaptive > uniform - 0.02,
            "adaptive {adaptive} should beat uniform {uniform} on SALD-like data"
        );
    }

    #[test]
    fn ti_ea_default_close_to_full_scan_accuracy() {
        let ds = SyntheticSpec::sift_like().generate(1000, 25, 7);
        let truth = exact_knn(&ds.data, &ds.queries, 10);
        let cfg = VaqConfig::new(64, 16).with_ti_clusters(100);
        let vaq = Vaq::train(&ds.data, &cfg).unwrap();
        let run = |strategy: SearchStrategy| -> f64 {
            let retrieved: Vec<Vec<u32>> = (0..ds.queries.rows())
                .map(|q| {
                    vaq.search_with(ds.queries.row(q), 10, strategy)
                        .unwrap()
                        .0
                        .iter()
                        .map(|n| n.index)
                        .collect()
                })
                .collect();
            recall_at_k(&retrieved, &truth, 10)
        };
        let full = run(SearchStrategy::FullScan);
        let tiea = run(SearchStrategy::TiEa { visit_frac: 0.25 });
        assert!(
            tiea > full - 0.1,
            "TI+EA-0.25 recall {tiea} dropped too far below full-scan {full}"
        );
    }

    #[test]
    fn pruning_reduces_work_dramatically() {
        let ds = SyntheticSpec::sift_like().generate(2000, 0, 9);
        let cfg = VaqConfig::new(64, 16).with_ti_clusters(100);
        let vaq = Vaq::train(&ds.data, &cfg).unwrap();
        let q = ds.data.row(42);
        let (_, full) = vaq.search_with(q, 10, SearchStrategy::FullScan).unwrap();
        let (_, ea) = vaq.search_with(q, 10, SearchStrategy::EarlyAbandon).unwrap();
        let (_, tiea) = vaq.search_with(q, 10, SearchStrategy::TiEa { visit_frac: 0.1 }).unwrap();
        assert!(
            ea.lookups < full.lookups / 2,
            "EA lookups {} vs full {}",
            ea.lookups,
            full.lookups
        );
        assert!(
            tiea.vectors_visited < full.vectors_visited / 2,
            "TI visited {} of {}",
            tiea.vectors_visited,
            full.vectors_visited
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = SyntheticSpec::deep_like().generate(300, 0, 11);
        let cfg = VaqConfig::new(32, 8).with_ti_clusters(16).with_seed(9);
        let a = Vaq::train(&ds.data, &cfg).unwrap();
        let b = Vaq::train(&ds.data, &cfg).unwrap();
        assert_eq!(a.codes, b.codes);
        assert_eq!(a.bits, b.bits);
        let qa = a.search(ds.data.row(5), 7);
        let qb = b.search(ds.data.row(5), 7);
        assert_eq!(qa, qb);
    }

    #[test]
    fn quantization_error_decreases_with_budget() {
        let ds = SyntheticSpec::sift_like().generate(600, 0, 13);
        let small = Vaq::train(&ds.data, &VaqConfig::new(32, 8).with_ti_clusters(0)).unwrap();
        let large = Vaq::train(&ds.data, &VaqConfig::new(96, 8).with_ti_clusters(0)).unwrap();
        assert!(
            large.quantization_error(&ds.data).unwrap()
                < small.quantization_error(&ds.data).unwrap()
        );
    }

    #[test]
    fn clustered_subspaces_train_and_search() {
        let ds = SyntheticSpec::sald_like().generate(500, 5, 15);
        let cfg = VaqConfig::new(64, 16).clustered().with_ti_clusters(32);
        let vaq = Vaq::train(&ds.data, &cfg).unwrap();
        assert_eq!(vaq.code_bits(), 64);
        let res = vaq.search(ds.queries.row(0), 10).unwrap();
        assert_eq!(res.len(), 10);
        // Non-uniform widths on a steep spectrum.
        let widths: std::collections::BTreeSet<usize> =
            vaq.layout().ranges.iter().map(|&(lo, hi)| hi - lo).collect();
        assert!(widths.len() > 1, "widths {:?}", vaq.layout().ranges);
    }

    #[test]
    fn batch_search_matches_sequential() {
        let ds = SyntheticSpec::sift_like().generate(600, 24, 27);
        let vaq = Vaq::train(&ds.data, &VaqConfig::new(64, 8).with_ti_clusters(24)).unwrap();
        for strategy in [SearchStrategy::FullScan, SearchStrategy::TiEa { visit_frac: 0.5 }] {
            let (batch, _) = vaq.search_batch(&ds.queries, 7, strategy).unwrap();
            assert_eq!(batch.len(), 24);
            for q in 0..ds.queries.rows() {
                assert_eq!(batch[q], vaq.search_with(ds.queries.row(q), 7, strategy).unwrap().0);
            }
        }
    }

    #[test]
    fn batch_stats_are_the_sum_of_per_query_stats() {
        // Pruning counters must survive aggregation across worker threads:
        // the batch stats equal the component-wise sum of sequential runs,
        // and actually show pruning (skips > 0) for TI + EA.
        let ds = SyntheticSpec::sift_like().generate(900, 16, 29);
        let vaq = Vaq::train(&ds.data, &VaqConfig::new(64, 8).with_ti_clusters(32)).unwrap();
        let strategy = SearchStrategy::TiEa { visit_frac: 0.25 };
        let (_, batch) = vaq.search_batch(&ds.queries, 10, strategy).unwrap();
        let mut seq = SearchStats::default();
        for q in 0..ds.queries.rows() {
            seq += vaq.search_with(ds.queries.row(q), 10, strategy).unwrap().1;
        }
        assert_eq!(batch.vectors_visited, seq.vectors_visited);
        assert_eq!(batch.vectors_skipped, seq.vectors_skipped);
        assert_eq!(batch.lookups, seq.lookups);
        assert_eq!(batch.lookups_skipped, seq.lookups_skipped);
        assert!(batch.vectors_skipped > 0, "TI pruned nothing across the batch");
        assert!(batch.lookups_skipped > 0, "EA pruned nothing across the batch");
        // Every query accounts for the whole database.
        assert_eq!(batch.vectors_visited + batch.vectors_skipped, 900 * 16);
        // Workers clone a pre-sized engine: no per-query table allocation.
        assert_eq!(batch.table_reallocations, 0);
    }

    #[test]
    fn small_batches_fall_back_to_sequential_with_stats() {
        let ds = SyntheticSpec::deep_like().generate(200, 2, 33);
        let vaq = Vaq::train(&ds.data, &VaqConfig::new(32, 8).with_ti_clusters(8)).unwrap();
        let (batch, stats) =
            vaq.search_batch(&ds.queries, 5, SearchStrategy::EarlyAbandon).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(stats.vectors_visited + stats.vectors_skipped, 200 * 2);
    }

    #[test]
    fn validate_rejects_bad_visit_fractions() {
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let cfg = VaqConfig::new(64, 8).with_visit_frac(bad);
            assert!(
                matches!(cfg.validate(), Err(VaqError::BadConfig(_))),
                "visit_frac {bad} accepted"
            );
        }
        assert!(VaqConfig::new(64, 8).with_visit_frac(1.0).validate().is_ok());
        assert!(VaqConfig::new(64, 8).with_visit_frac(0.01).validate().is_ok());
    }

    #[test]
    fn validate_rejects_inverted_bit_bounds() {
        let mut cfg = VaqConfig::new(64, 8);
        cfg.min_bits = 9;
        cfg.max_bits = 4;
        assert!(matches!(cfg.validate(), Err(VaqError::BadConfig(_))));
        cfg.min_bits = 0;
        assert!(matches!(cfg.validate(), Err(VaqError::BadConfig(_))));
        cfg.min_bits = 1;
        cfg.max_bits = 17;
        assert!(matches!(cfg.validate(), Err(VaqError::BadConfig(_))));
    }

    #[test]
    fn validate_rejects_infeasible_budgets_before_training() {
        // Too small and too large budgets both fail fast, with the exact
        // bounds in the error.
        for budget in [2usize, 200] {
            let cfg = VaqConfig::new(budget, 8);
            match cfg.validate() {
                Err(VaqError::InfeasibleBudget { budget: b, subspaces, min_bits, max_bits }) => {
                    assert_eq!((b, subspaces, min_bits, max_bits), (budget, 8, 1, 13));
                }
                other => panic!("budget {budget}: expected InfeasibleBudget, got {other:?}"),
            }
        }
        // Training surfaces the same error without touching the data.
        let ds = SyntheticSpec::deep_like().generate(50, 0, 37);
        assert!(matches!(
            Vaq::train(&ds.data, &VaqConfig::new(2, 8)),
            Err(VaqError::InfeasibleBudget { .. })
        ));
    }

    #[test]
    fn engine_reuse_matches_convenience_search() {
        let ds = SyntheticSpec::sift_like().generate(400, 0, 41);
        let vaq = Vaq::train(&ds.data, &VaqConfig::new(64, 8).with_ti_clusters(16)).unwrap();
        let mut engine = vaq.engine();
        let baseline = engine.arena().reallocations();
        for i in (0..400).step_by(57) {
            let (held, _) = vaq.search_in(&mut engine, ds.data.row(i), 5).unwrap();
            let held_default = vaq.search(ds.data.row(i), 5).unwrap();
            assert_eq!(held, held_default, "row {i}");
        }
        assert_eq!(engine.arena().reallocations(), baseline, "pre-sized engine grew");
    }

    #[test]
    fn constrained_training_honours_service_agreements() {
        use crate::allocation::AllocationConstraint;
        let ds = SyntheticSpec::sald_like().generate(400, 0, 31);
        let cfg = VaqConfig::new(64, 8)
            .with_ti_clusters(0)
            .with_constraint(AllocationConstraint::CapSubspace { subspace: 0, bits: 8 })
            .with_constraint(AllocationConstraint::Pin { subspace: 7, bits: 2 });
        let vaq = Vaq::train(&ds.data, &cfg).unwrap();
        assert!(vaq.bits()[0] <= 8, "{:?}", vaq.bits());
        assert_eq!(vaq.bits()[7], 2);
        assert_eq!(vaq.code_bits(), 64);
        // Constraints with the uniform strategy must be rejected.
        let bad = VaqConfig::new(64, 8)
            .uniform_allocation()
            .with_constraint(AllocationConstraint::Pin { subspace: 0, bits: 4 });
        assert!(Vaq::train(&ds.data, &bad).is_err());
    }

    #[test]
    fn incremental_add_is_searchable_and_exact() {
        let ds = SyntheticSpec::sift_like().generate(800, 0, 21);
        let initial = ds.data.select_rows(&(0..600).collect::<Vec<_>>());
        let extra = ds.data.select_rows(&(600..800).collect::<Vec<_>>());
        let mut vaq = Vaq::train(&initial, &VaqConfig::new(64, 8).with_ti_clusters(32)).unwrap();
        let first = vaq.add(&extra).unwrap();
        assert_eq!(first, 600);
        assert_eq!(vaq.len(), 800);
        // Newly added vectors are findable.
        let mut hits = 0;
        for i in (600..800).step_by(17) {
            let res = vaq.search_with(ds.data.row(i), 10, SearchStrategy::FullScan).unwrap().0;
            if res.iter().any(|n| n.index == i as u32) {
                hits += 1;
            }
        }
        let total = (600..800).step_by(17).count();
        assert!(hits * 10 >= total * 7, "{hits}/{total}");
        // Pruning invariants survive the inserts: TI(1.0) == full scan.
        for i in [0usize, 650, 799] {
            let full: Vec<u32> = vaq
                .search_with(ds.data.row(i), 10, SearchStrategy::FullScan)
                .unwrap()
                .0
                .iter()
                .map(|n| n.index)
                .collect();
            let ti: Vec<u32> = vaq
                .search_with(ds.data.row(i), 10, SearchStrategy::TiEa { visit_frac: 1.0 })
                .unwrap()
                .0
                .iter()
                .map(|n| n.index)
                .collect();
            assert_eq!(full, ti, "row {i}");
        }
        // An add that equals train-then-add of everything at once matches
        // encoding-wise (dictionaries shared).
        let joint = {
            let mut v = Vaq::train(&initial, &VaqConfig::new(64, 8).with_ti_clusters(32)).unwrap();
            v.add(&extra).unwrap();
            v
        };
        assert_eq!(vaq.code(700), joint.code(700));
    }

    #[test]
    fn add_rejects_wrong_dimensionality() {
        let ds = SyntheticSpec::deep_like().generate(100, 0, 23);
        let mut vaq = Vaq::train(&ds.data, &VaqConfig::new(32, 8).with_ti_clusters(8)).unwrap();
        assert!(vaq.add(&Matrix::zeros(5, 7)).is_err());
    }

    #[test]
    fn code_accessor_is_consistent_with_encoder() {
        let ds = SyntheticSpec::deep_like().generate(200, 0, 17);
        let vaq = Vaq::train(&ds.data, &VaqConfig::new(32, 8).with_ti_clusters(0)).unwrap();
        let projected = vaq.project_query(ds.data.row(3)).unwrap();
        assert_eq!(vaq.code(3), vaq.encoder().encode(&projected).as_slice());
    }
}
