//! Deterministic fail-point fault injection for the train→query pipeline,
//! plus the degradation log that records every graceful fallback the
//! pipeline takes (with or without injection).
//!
//! The runtime is gated behind the `faults` cargo feature. Without it,
//! [`fired`] is a `const false` that the optimizer deletes, so production
//! builds carry no branch, no atomic, and no registry — the sites compile
//! to no-ops. With the feature on but nothing armed, the cost per site is
//! one relaxed atomic load.
//!
//! Sites are *named* and *registered*: [`SITES`] is the single source of
//! truth, mirrored by the `xtask` lint (rule VAQ006) so a site cannot be
//! added or removed without updating the registry, and by `vaq_cli chaos`
//! which arms every registered site under a seeded schedule.
//!
//! Triggering is deterministic: a [`Trigger::Probability`] site hashes
//! `(seed, site name, per-site hit counter)` through splitmix64, so the
//! same seed always fires the same hits — chaos runs are reproducible.

/// Every registered fault site, in pipeline order. Each name is
/// `stage.operation`; the wiring lives next to the real failure it
/// simulates and shares the real recovery path.
pub const SITES: &[&str] = &[
    "ingress.validate",
    "varpca.fit",
    "subspaces.plan",
    "allocation.milp",
    "dictionary.train",
    "ti.build",
    "persist.from_bytes",
    "persist.wal_append",
    "persist.commit",
    "persist.fsync",
    "persist.mmap",
    "engine.prepare",
    "engine.search",
    "engine.qscan",
    "segment.seal",
    "segment.compact",
];

/// True when `site` is in [`SITES`].
pub fn is_registered(site: &str) -> bool {
    SITES.contains(&site)
}

// ---------------------------------------------------------------------------
// Degradation log (always compiled — fallbacks happen without injection too).
// ---------------------------------------------------------------------------

use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::Mutex;

static DEGRADATIONS_NONEMPTY: AtomicBool = AtomicBool::new(false);
static DEGRADATIONS: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// Records that a pipeline stage took its degraded path (`what` names the
/// fallback, e.g. `"allocation.milp: greedy fallback"`). Only failure
/// paths call this, so the lock is never contended in steady state. Every
/// entry is also surfaced as a structured `degradation` event through
/// [`crate::obs`] (a no-op while recording is disabled), so profiled runs
/// see fallbacks in sequence with the rest of the event stream.
pub fn note_degradation(what: &'static str) {
    crate::obs::event("degradation", what);
    if let Ok(mut log) = DEGRADATIONS.lock() {
        log.push(what);
        // ORDERING: Release pairs with the Acquire fast-path load in
        // `take_degradations`: a drainer that observes `true` must also
        // observe the push above. (The store happens under the mutex,
        // which already orders it against other writers.)
        DEGRADATIONS_NONEMPTY.store(true, Ordering::Release);
    }
}

/// Drains and returns the degradation log (process-wide). `vaq_cli chaos`
/// calls this between seeds to report which fallbacks each run exercised.
pub fn take_degradations() -> Vec<&'static str> {
    // ORDERING: Acquire pairs with the Release store in
    // `note_degradation`; observing `true` here guarantees the entries
    // behind it are visible once the lock is taken. A stale `false` only
    // delays draining to the caller's next poll — never loses entries.
    if !DEGRADATIONS_NONEMPTY.load(Ordering::Acquire) {
        return Vec::new();
    }
    match DEGRADATIONS.lock() {
        Ok(mut log) => {
            // ORDERING: Release keeps the flag's pairing symmetric; the
            // clearing store is already ordered by the mutex, and a
            // racing `note_degradation` re-arms the flag after its push.
            DEGRADATIONS_NONEMPTY.store(false, Ordering::Release);
            std::mem::take(&mut *log)
        }
        Err(_) => Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// Injection runtime (feature-gated).
// ---------------------------------------------------------------------------

/// When and whether an armed site fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Never fires (armed but inert).
    Off,
    /// Fires on every hit.
    Always,
    /// Fires on exactly the n-th hit (1-based), once.
    NthHit(u64),
    /// Fires each hit independently with probability `p`, deterministically
    /// derived from `(seed, site, hit index)`.
    Probability {
        /// Firing probability in `[0, 1]`.
        p: f64,
        /// Schedule seed.
        seed: u64,
    },
    /// Simulated power loss at the n-th hit (1-based): fires there and on
    /// every later hit, and raises the process-wide [`crashed`] flag so
    /// **all** subsequent IO sites (`persist.*`) abandon their operation
    /// whether or not they are armed — after a crash, no write reaches
    /// disk. Cleared by `disarm_all`. The crash-point harness
    /// (`vaq_cli crash`) sweeps this trigger over every IO point of a
    /// schedule and asserts recovery matches the committed prefix.
    CrashPoint(u64),
}

#[cfg(feature = "faults")]
mod runtime {
    use super::Trigger;
    use crate::sync::atomic::{AtomicBool, Ordering};
    use crate::sync::Mutex;
    use std::collections::HashMap;

    static ANY_ARMED: AtomicBool = AtomicBool::new(false);
    static REGISTRY: Mutex<Option<HashMap<&'static str, SiteState>>> = Mutex::new(None);
    /// Sticky "power was lost" flag raised by a [`Trigger::CrashPoint`]
    /// firing; while set, every `persist.*` site reports fired so no IO
    /// after the crash point reaches disk.
    static CRASHED: AtomicBool = AtomicBool::new(false);

    struct SiteState {
        trigger: Trigger,
        hits: u64,
    }

    /// splitmix64 — a tiny, well-mixed hash for reproducible schedules.
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    fn site_hash(site: &str) -> u64 {
        // FNV-1a over the site name, folded through splitmix64.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in site.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        splitmix64(h)
    }

    /// Arms `site` with `trigger`. Unknown sites are a caller bug in test
    /// infrastructure; they are ignored in release and flagged in debug.
    pub fn arm(site: &'static str, trigger: Trigger) {
        debug_assert!(super::is_registered(site), "arming unregistered fault site `{site}`");
        if let Ok(mut guard) = REGISTRY.lock() {
            let map = guard.get_or_insert_with(HashMap::new);
            map.insert(site, SiteState { trigger, hits: 0 });
            // ORDERING: Release pairs with the Acquire fast-path load in
            // `fired`: a site that observes `true` must also observe the
            // registry entry inserted above once it takes the lock.
            ANY_ARMED.store(true, Ordering::Release);
        }
    }

    /// Disarms every site, resets all hit counters, and clears the
    /// simulated-crash flag (the next schedule powers the machine back
    /// up).
    pub fn disarm_all() {
        if let Ok(mut guard) = REGISTRY.lock() {
            *guard = None;
            // ORDERING: Relaxed is enough — the flag is only consulted
            // through `fired`/`crashed`, whose callers synchronize on the
            // registry mutex or run single-threaded harness schedules.
            CRASHED.store(false, Ordering::Relaxed);
            // ORDERING: Release for symmetry with `arm`; a stale `true`
            // at a fault site only costs one registry lock that finds
            // the map empty — injection stays correct.
            ANY_ARMED.store(false, Ordering::Release);
        }
    }

    /// True after a [`Trigger::CrashPoint`] fired and before the next
    /// `disarm_all`: the simulated machine is off, all IO is abandoned.
    pub fn crashed() -> bool {
        // ORDERING: Relaxed — see the store in `fired`; harness schedules
        // are single-threaded around the crash point and recovery starts
        // only after `disarm_all`.
        CRASHED.load(Ordering::Relaxed)
    }

    /// Hits recorded at `site` since it was armed (0 when unarmed). The
    /// crash harness arms sites with [`Trigger::Off`] for a counting
    /// pass, then sweeps `CrashPoint(1..=hits)` to kill at every IO
    /// point.
    pub fn hit_count(site: &'static str) -> u64 {
        let Ok(guard) = REGISTRY.lock() else {
            return 0;
        };
        guard.as_ref().and_then(|m| m.get(site)).map_or(0, |s| s.hits)
    }

    /// Evaluates the site's trigger, counting this call as one hit.
    ///
    /// After a simulated power loss ([`Trigger::CrashPoint`]) every
    /// `persist.*` site fires unconditionally — armed or not — so the
    /// durability layer abandons all IO until `disarm_all` powers the
    /// machine back up.
    pub fn fired(site: &'static str) -> bool {
        // ORDERING: Acquire pairs with the Release store in `arm`:
        // observing `true` guarantees the armed entry is visible under
        // the lock below. A stale `false` can only skip an injection
        // that raced with arming — tests arm before spawning workers.
        if !ANY_ARMED.load(Ordering::Acquire) {
            return false;
        }
        if site.starts_with("persist.") && crashed() {
            return true;
        }
        let Ok(mut guard) = REGISTRY.lock() else {
            return false;
        };
        let Some(state) = guard.as_mut().and_then(|m| m.get_mut(site)) else {
            return false;
        };
        state.hits += 1;
        match state.trigger {
            Trigger::Off => false,
            Trigger::Always => true,
            Trigger::NthHit(n) => state.hits == n,
            Trigger::Probability { p, seed } => {
                let h = splitmix64(seed ^ site_hash(site) ^ state.hits);
                // Map the top 53 bits to [0, 1).
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                u < p
            }
            Trigger::CrashPoint(n) => {
                if state.hits >= n {
                    // ORDERING: Relaxed — the caller is the thread that
                    // will observe the abandoned IO; cross-thread
                    // visibility is not part of the crash model.
                    CRASHED.store(true, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
        }
    }
}

#[cfg(feature = "faults")]
pub use runtime::{arm, crashed, disarm_all, fired, hit_count};

/// With the `faults` feature off, no site ever fires and the call
/// disappears at compile time.
#[cfg(not(feature = "faults"))]
#[inline(always)]
pub fn fired(_site: &'static str) -> bool {
    false
}

/// With the `faults` feature off, the machine never crashes.
#[cfg(not(feature = "faults"))]
#[inline(always)]
pub fn crashed() -> bool {
    false
}

#[cfg(all(test, feature = "faults"))]
mod tests {
    use super::*;
    use crate::sync::{Mutex, MutexGuard};

    /// The registry is process-global; serialize tests that touch it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> MutexGuard<'static, ()> {
        let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        g
    }

    #[test]
    fn unarmed_sites_never_fire() {
        let _g = guard();
        assert!(!fired("varpca.fit"));
        assert!(!fired("engine.search"));
    }

    #[test]
    fn always_and_nth_hit_triggers() {
        let _g = guard();
        arm("varpca.fit", Trigger::Always);
        assert!(fired("varpca.fit"));
        assert!(fired("varpca.fit"));

        arm("ti.build", Trigger::NthHit(3));
        assert!(!fired("ti.build"));
        assert!(!fired("ti.build"));
        assert!(fired("ti.build"));
        assert!(!fired("ti.build")); // fires exactly once
        disarm_all();
        assert!(!fired("varpca.fit"));
    }

    #[test]
    fn probability_schedule_is_deterministic_per_seed() {
        let _g = guard();
        let run = |seed: u64| -> Vec<bool> {
            arm("allocation.milp", Trigger::Probability { p: 0.5, seed });
            let fires = (0..64).map(|_| fired("allocation.milp")).collect();
            disarm_all();
            fires
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed must reproduce the same schedule");
        assert_ne!(a, c, "different seeds should differ");
        let hits = a.iter().filter(|&&f| f).count();
        assert!(hits > 8 && hits < 56, "p=0.5 over 64 hits fired {hits} times");
    }

    #[test]
    fn crash_point_is_sticky_across_all_io_sites() {
        let _g = guard();
        assert!(!crashed());
        arm("persist.wal_append", Trigger::CrashPoint(3));
        assert!(!fired("persist.wal_append"));
        assert!(!fired("persist.wal_append"));
        // Unrelated sites are untouched before the crash...
        assert!(!fired("persist.commit"));
        assert!(!fired("segment.seal"));
        // ...the third hit is the power loss...
        assert!(fired("persist.wal_append"));
        assert!(crashed());
        // ...and afterwards every IO site reports fired, armed or not,
        // while non-IO sites keep their own schedules.
        assert!(fired("persist.wal_append"));
        assert!(fired("persist.commit"));
        assert!(fired("persist.fsync"));
        assert!(!fired("segment.seal"));
        // Power back up.
        disarm_all();
        assert!(!crashed());
        assert!(!fired("persist.commit"));
    }

    #[test]
    fn hit_counts_enumerate_io_points() {
        let _g = guard();
        arm("persist.commit", Trigger::Off);
        assert_eq!(hit_count("persist.commit"), 0);
        for _ in 0..5 {
            assert!(!fired("persist.commit"));
        }
        assert_eq!(hit_count("persist.commit"), 5);
        assert_eq!(hit_count("persist.fsync"), 0, "unarmed sites count nothing");
        disarm_all();
        assert_eq!(hit_count("persist.commit"), 0);
    }

    #[test]
    fn degradation_log_drains() {
        let _g = guard();
        take_degradations();
        note_degradation("test: fallback one");
        note_degradation("test: fallback two");
        let log = take_degradations();
        assert!(log.contains(&"test: fallback one") && log.contains(&"test: fallback two"));
        assert!(take_degradations().is_empty());
    }

    #[test]
    fn every_site_is_unique_and_well_formed() {
        for (i, s) in SITES.iter().enumerate() {
            assert!(s.contains('.'), "site `{s}` should be stage.operation");
            assert!(!SITES[..i].contains(s), "duplicate site `{s}`");
            assert!(is_registered(s));
        }
    }
}
