//! Variable-sized dictionaries and data encoding (paper §III-D,
//! Algorithm 3).
//!
//! Each subspace `s` gets a k-means dictionary with `2^{bits[s]}` items.
//! Dictionaries larger than `2^10` are trained hierarchically (coarse
//! `k = 2^6` then per-cluster splits), exactly the paper's escape hatch for
//! large dictionaries. Codes are `u16` per subspace (the paper's default
//! bounds are 1..=13 bits).

use crate::subspaces::SubspaceLayout;
use crate::VaqError;
use vaq_kmeans::{nearest_centroid, KMeans, KMeansConfig};
use vaq_linalg::{squared_distances_into, Matrix, TableArena};

/// Dictionary-size threshold beyond which hierarchical k-means is used
/// (paper §III-D: "> 2^10").
pub const HIERARCHICAL_THRESHOLD: usize = 1 << 10;

/// Coarse branching factor for hierarchical training (paper: `k = 2^6`).
pub const HIERARCHICAL_BRANCH: usize = 1 << 6;

/// Per-subspace dictionaries plus the encoded database.
#[derive(Debug, Clone)]
pub struct Encoder {
    /// One dictionary per subspace; dictionary `s` has up to `2^{bits[s]}`
    /// rows, each of that subspace's width.
    pub(crate) codebooks: Vec<Matrix>,
    /// Bits assigned per subspace.
    pub(crate) bits: Vec<usize>,
    /// Subspace `(start, end)` column ranges in the projected space.
    pub(crate) ranges: Vec<(usize, usize)>,
}

impl Encoder {
    /// Trains the variable-sized dictionaries on projected data.
    ///
    /// `projected` must already be in the layout's permuted PC order.
    pub fn train(
        projected: &Matrix,
        layout: &SubspaceLayout,
        bits: &[usize],
        train_iters: usize,
        seed: u64,
    ) -> Result<Encoder, VaqError> {
        if projected.rows() == 0 {
            return Err(VaqError::EmptyData);
        }
        if bits.len() != layout.num_subspaces() {
            return Err(VaqError::BadConfig(format!(
                "{} bit entries for {} subspaces",
                bits.len(),
                layout.num_subspaces()
            )));
        }
        let mut codebooks = Vec::with_capacity(bits.len());
        for (s, (&(lo, hi), &b)) in layout.ranges.iter().zip(bits.iter()).enumerate() {
            let k = 1usize << b;
            let sub = submatrix(projected, lo, hi);
            let cfg = KMeansConfig::new(k)
                .with_seed(seed.wrapping_add(s as u64))
                .with_max_iters(train_iters);
            let model = if k > HIERARCHICAL_THRESHOLD {
                KMeans::fit_hierarchical(&sub, k, HIERARCHICAL_BRANCH, &cfg)
            } else {
                KMeans::fit(&sub, &cfg)
            }?;
            if !model.converged {
                crate::faults::note_degradation("dictionary.train: iteration budget hit");
            }
            codebooks.push(model.centroids);
        }
        let encoder = Encoder { codebooks, bits: bits.to_vec(), ranges: layout.ranges.clone() };
        crate::audit::Audit::debug_audit(&encoder, "dictionary training");
        Ok(encoder)
    }

    /// Number of subspaces.
    pub fn num_subspaces(&self) -> usize {
        self.ranges.len()
    }

    /// Per-subspace bit allocation.
    pub fn bits(&self) -> &[usize] {
        &self.bits
    }

    /// Total bits per encoded vector.
    pub fn code_bits(&self) -> usize {
        self.bits.iter().sum()
    }

    /// Subspace column ranges.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// Per-subspace dictionaries.
    pub fn codebooks(&self) -> &[Matrix] {
        &self.codebooks
    }

    /// Encodes one projected vector.
    pub fn encode(&self, projected: &[f32]) -> Vec<u16> {
        self.ranges
            .iter()
            .zip(self.codebooks.iter())
            .map(|(&(lo, hi), cb)| nearest_centroid(cb, &projected[lo..hi]).0 as u16)
            .collect()
    }

    /// Encodes every row, parallelized across rows. Output layout:
    /// row-major `n × m` codes.
    pub fn encode_all(&self, projected: &Matrix) -> Vec<u16> {
        let n = projected.rows();
        let m = self.ranges.len();
        let mut codes = vec![0u16; n * m];
        let workers = crate::threads::worker_count(n);
        let chunk = n.div_ceil(workers);
        crate::sync::thread::scope(|scope| {
            let mut rest: &mut [u16] = &mut codes;
            for w in 0..workers {
                let start = w * chunk;
                if start >= n {
                    break;
                }
                let len = chunk.min(n - start);
                let (mine, tail) = rest.split_at_mut(len * m);
                rest = tail;
                scope.spawn(move || {
                    for j in 0..len {
                        let row = projected.row(start + j);
                        for (s, (&(lo, hi), cb)) in
                            self.ranges.iter().zip(self.codebooks.iter()).enumerate()
                        {
                            mine[j * m + s] = nearest_centroid(cb, &row[lo..hi]).0 as u16;
                        }
                    }
                });
            }
        });
        codes
    }

    /// Reconstructs a projected-space vector from its code.
    pub fn decode(&self, code: &[u16]) -> Vec<f32> {
        let dim = self.ranges.last().map(|r| r.1).unwrap_or(0);
        let mut out = vec![0.0f32; dim];
        for ((&(lo, hi), cb), &c) in self.ranges.iter().zip(self.codebooks.iter()).zip(code) {
            out[lo..hi].copy_from_slice(&cb.row(c as usize)[..hi - lo]);
        }
        out
    }

    /// Reconstructs only the first `prefix_subspaces` subspaces (used by the
    /// triangle-inequality partitioner).
    pub fn decode_prefix(&self, code: &[u16], prefix_subspaces: usize) -> Vec<f32> {
        let p = prefix_subspaces.min(self.ranges.len());
        let dim = if p == 0 { 0 } else { self.ranges[p - 1].1 };
        let mut out = vec![0.0f32; dim];
        for ((&(lo, hi), cb), &c) in self.ranges[..p].iter().zip(self.codebooks.iter()).zip(code) {
            out[lo..hi].copy_from_slice(&cb.row(c as usize)[..hi - lo]);
        }
        out
    }

    /// Per-subspace table sizes (dictionary row counts), i.e. the arena
    /// layout for this encoder's ADC tables.
    pub fn table_sizes(&self) -> impl Iterator<Item = usize> + '_ {
        self.codebooks.iter().map(|cb| cb.rows())
    }

    /// Fills `arena` with per-subspace ADC lookup tables (squared
    /// distances) for a projected query. The arena is re-shaped to this
    /// encoder's layout first, which is free once it has seen it — the
    /// steady-state batch path allocates nothing here.
    pub fn fill_tables(&self, projected_query: &[f32], arena: &mut TableArena) {
        arena.ensure_layout(self.table_sizes());
        for (s, (&(lo, hi), cb)) in self.ranges.iter().zip(self.codebooks.iter()).enumerate() {
            squared_distances_into(&projected_query[lo..hi], cb, arena.table_mut(s));
        }
    }

    /// Builds per-subspace ADC lookup tables (squared distances) for a
    /// projected query.
    #[deprecated(
        since = "0.2.0",
        note = "allocates one Vec per subspace per query; use `fill_tables` with a reusable \
                `TableArena` (or go through `QueryEngine`) instead"
    )]
    pub fn lookup_tables(&self, projected_query: &[f32]) -> Vec<Vec<f32>> {
        self.ranges
            .iter()
            .zip(self.codebooks.iter())
            .map(|(&(lo, hi), cb)| {
                let q = &projected_query[lo..hi];
                cb.iter_rows().map(|c| vaq_linalg::squared_euclidean(c, q)).collect()
            })
            .collect()
    }
}

/// Copies a contiguous column range into its own matrix.
pub(crate) fn submatrix(data: &Matrix, lo: usize, hi: usize) -> Matrix {
    let mut out = Matrix::zeros(data.rows(), hi - lo);
    for i in 0..data.rows() {
        out.row_mut(i).copy_from_slice(&data.row(i)[lo..hi]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subspaces::{SubspaceLayout, SubspaceMode};

    fn toy_projected(n: usize, d: usize, seed: u64) -> Matrix {
        let mut s = seed.max(1);
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(d);
            for j in 0..d {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = ((s >> 40) as f32 / (1u32 << 23) as f32) - 1.0;
                // Decaying magnitude per dimension mimics PC space.
                row.push(v * (1.0 / (1.0 + j as f32)));
            }
            rows.push(row);
        }
        Matrix::from_rows(&rows)
    }

    fn layout(d: usize, m: usize) -> SubspaceLayout {
        let vars: Vec<f64> = (0..d).map(|i| 1.0 / (1.0 + i as f64)).collect();
        SubspaceLayout::build(&vars, m, SubspaceMode::Uniform, false, 0).unwrap()
    }

    #[test]
    fn variable_dictionary_sizes() {
        let data = toy_projected(300, 16, 1);
        let l = layout(16, 4);
        let enc = Encoder::train(&data, &l, &[6, 4, 3, 1], 10, 0).unwrap();
        assert_eq!(enc.codebooks()[0].rows(), 64);
        assert_eq!(enc.codebooks()[1].rows(), 16);
        assert_eq!(enc.codebooks()[2].rows(), 8);
        assert_eq!(enc.codebooks()[3].rows(), 2);
        assert_eq!(enc.code_bits(), 14);
    }

    #[test]
    fn codes_within_dictionary_bounds() {
        let data = toy_projected(200, 12, 3);
        let l = layout(12, 3);
        let enc = Encoder::train(&data, &l, &[5, 3, 2], 10, 0).unwrap();
        let codes = enc.encode_all(&data);
        for i in 0..200 {
            for s in 0..3 {
                let c = codes[i * 3 + s] as usize;
                assert!(c < enc.codebooks()[s].rows());
            }
        }
    }

    #[test]
    fn encode_all_matches_encode() {
        let data = toy_projected(150, 12, 5);
        let l = layout(12, 3);
        let enc = Encoder::train(&data, &l, &[4, 3, 2], 10, 0).unwrap();
        let codes = enc.encode_all(&data);
        for i in (0..150).step_by(13) {
            assert_eq!(&codes[i * 3..(i + 1) * 3], enc.encode(data.row(i)).as_slice());
        }
    }

    #[test]
    fn decode_prefix_matches_decode_head() {
        let data = toy_projected(100, 12, 7);
        let l = layout(12, 4);
        let enc = Encoder::train(&data, &l, &[4, 3, 2, 1], 10, 0).unwrap();
        let code = enc.encode(data.row(0));
        let full = enc.decode(&code);
        let prefix = enc.decode_prefix(&code, 2);
        assert_eq!(prefix.len(), l.ranges[1].1);
        assert_eq!(&full[..prefix.len()], prefix.as_slice());
    }

    #[test]
    fn filled_arena_sizes_match_dictionaries() {
        let data = toy_projected(100, 12, 9);
        let l = layout(12, 3);
        let enc = Encoder::train(&data, &l, &[5, 3, 1], 10, 0).unwrap();
        let mut arena = TableArena::new();
        enc.fill_tables(data.row(0), &mut arena);
        assert_eq!(arena.table(0).len(), 32);
        assert_eq!(arena.table(1).len(), 8);
        assert_eq!(arena.table(2).len(), 2);
    }

    #[test]
    fn adc_identity_distance_to_reconstruction() {
        // Summed table entries for a code == squared distance from query to
        // the decoded vector.
        let data = toy_projected(120, 12, 11);
        let l = layout(12, 3);
        let enc = Encoder::train(&data, &l, &[4, 3, 2], 10, 0).unwrap();
        let q = data.row(3);
        let code = enc.encode(data.row(40));
        let mut arena = TableArena::new();
        enc.fill_tables(q, &mut arena);
        let adc: f32 = code.iter().enumerate().map(|(s, &c)| arena.lookup(s, c as usize)).sum();
        let direct = vaq_linalg::squared_euclidean(q, &enc.decode(&code));
        assert!((adc - direct).abs() < 1e-3 * direct.max(1.0));
    }

    #[test]
    fn arena_matches_deprecated_nested_tables() {
        let data = toy_projected(100, 12, 19);
        let l = layout(12, 3);
        let enc = Encoder::train(&data, &l, &[4, 3, 2], 10, 0).unwrap();
        let q = data.row(7);
        let mut arena = TableArena::new();
        enc.fill_tables(q, &mut arena);
        #[allow(deprecated)]
        let nested = enc.lookup_tables(q);
        for (s, table) in nested.iter().enumerate() {
            assert_eq!(arena.table(s), table.as_slice(), "subspace {s}");
        }
    }

    #[test]
    fn more_bits_less_distortion() {
        let data = toy_projected(400, 8, 13);
        let l = layout(8, 2);
        let err_of = |bits: &[usize]| -> f64 {
            let enc = Encoder::train(&data, &l, bits, 15, 0).unwrap();
            (0..data.rows())
                .map(|i| {
                    let rec = enc.decode(&enc.encode(data.row(i)));
                    vaq_linalg::squared_euclidean(data.row(i), &rec) as f64
                })
                .sum()
        };
        assert!(err_of(&[6, 5]) < err_of(&[2, 1]));
    }

    #[test]
    fn mismatched_bits_rejected() {
        let data = toy_projected(50, 8, 15);
        let l = layout(8, 2);
        assert!(Encoder::train(&data, &l, &[4], 5, 0).is_err());
        assert!(Encoder::train(&Matrix::zeros(0, 8), &l, &[4, 4], 5, 0).is_err());
    }

    #[test]
    fn hierarchical_path_trains_large_dictionaries() {
        // 11 bits = 2048 items > the 2^10 threshold; n is intentionally
        // larger so the dictionary is meaningful.
        let data = toy_projected(4000, 4, 17);
        let vars = vec![0.5, 0.3, 0.15, 0.05];
        let l = SubspaceLayout::build(&vars, 1, SubspaceMode::Uniform, false, 0).unwrap();
        let enc = Encoder::train(&data, &l, &[11], 5, 0).unwrap();
        assert_eq!(enc.codebooks()[0].rows(), 2048);
        // All codes must be valid indices.
        let codes = enc.encode_all(&data);
        assert!(codes.iter().all(|&c| (c as usize) < 2048));
    }
}
