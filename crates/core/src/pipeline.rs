//! Staged training pipeline (paper Algorithms 1–3 as explicit stages).
//!
//! [`crate::Vaq::train`] used to be one monolithic function; it is now a
//! chain of five typed stages, each consuming the previous one:
//!
//! 1. [`VarPcaStage::compute`] — `VarPCA` (Algorithm 1): fit the
//!    eigendecomposition whose spectrum measures dimension importance.
//!    Config validation happens here, before any numeric work.
//! 2. [`VarPcaStage::plan_subspaces`] — subspace construction + partial
//!    balancing (Algorithm 2, lines 2–9), permuting the projection to the
//!    layout's PC order.
//! 3. [`SubspacePlan::allocate_bits`] — the MILP bit allocation
//!    (Algorithm 2), honouring any [`crate::AllocationConstraint`]s.
//! 4. [`BitPlan::train_dictionaries`] — variable-sized dictionaries +
//!    database encoding (Algorithm 3, part 1).
//! 5. [`DictionaryStage::build_ti`] — TI partitioning (Algorithm 3,
//!    part 2), producing the finished [`Vaq`].
//!
//! Each intermediate stage exposes its state publicly, so ablations can
//! fork mid-pipeline — e.g. reuse one `VarPCA` across several bit budgets
//! without re-fitting the eigenbasis, or compare allocations on a fixed
//! subspace plan.

use crate::allocation::{allocate_bits, allocate_bits_constrained, AllocationStrategy};
use crate::audit::Audit;
use crate::encoder::Encoder;
use crate::faults;
use crate::search::SearchStrategy;
use crate::subspaces::{SubspaceLayout, SubspaceMode};
use crate::ti::TiPartition;
use crate::vaq::{IngressPolicy, Vaq, VaqConfig};
use crate::VaqError;
use vaq_linalg::{LinalgError, Matrix, Pca};

/// Position of the first NaN/Inf entry, if any.
fn first_non_finite(data: &Matrix) -> Option<(usize, usize)> {
    for i in 0..data.rows() {
        if let Some(j) = data.row(i).iter().position(|v| !v.is_finite()) {
            return Some((i, j));
        }
    }
    None
}

/// Ingress validation for [`Vaq::train`]: scans the input for NaN/Inf
/// *before any numeric work*. Under [`IngressPolicy::Reject`] the first
/// offending cell is named in the error; under [`IngressPolicy::Sanitize`]
/// a cleaned copy (non-finite entries zeroed) is returned and the
/// degradation is recorded. `Ok(None)` means the data was already clean
/// and can be used as-is.
pub fn ingress_check(data: &Matrix, cfg: &VaqConfig) -> Result<Option<Matrix>, VaqError> {
    if faults::fired("ingress.validate") {
        return Err(VaqError::Injected { site: "ingress.validate" });
    }
    let Some((row, col)) = first_non_finite(data) else {
        return Ok(None);
    };
    match cfg.ingress {
        IngressPolicy::Reject => Err(VaqError::NonFinite { row, col }),
        IngressPolicy::Sanitize => {
            faults::note_degradation("ingress.validate: non-finite values zeroed");
            let mut clean = data.clone();
            for i in 0..clean.rows() {
                for v in clean.row_mut(i) {
                    if !v.is_finite() {
                        *v = 0.0;
                    }
                }
            }
            Ok(Some(clean))
        }
    }
}

/// The `VarPCA` degradation path: when the eigendecomposition does not
/// converge, fall back to an axis-aligned "projection" — a permutation
/// that ranks the original dimensions by variance. Importance shares stay
/// meaningful (they are exactly the per-dimension variances), only the
/// rotation is lost.
fn axis_aligned_pca(data: &Matrix) -> Pca {
    let d = data.cols();
    let n = data.rows().max(1) as f64;
    let mut mean = vec![0.0f64; d];
    for i in 0..data.rows() {
        for (m, &v) in mean.iter_mut().zip(data.row(i)) {
            *m += v as f64;
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    let mut var = vec![0.0f64; d];
    for i in 0..data.rows() {
        for (j, &v) in data.row(i).iter().enumerate() {
            let c = v as f64 - mean[j];
            var[j] += c * c;
        }
    }
    for v in &mut var {
        *v /= n;
    }
    let mut order: Vec<usize> = (0..d).collect();
    order.sort_by(|&a, &b| var[b].total_cmp(&var[a]));
    let mut components = Matrix::zeros(d, d);
    for (pc, &dim) in order.iter().enumerate() {
        components.set(dim, pc, 1.0);
    }
    let eigenvalues: Vec<f64> = order.iter().map(|&dim| var[dim]).collect();
    Pca::from_parts(mean.into_iter().map(|m| m as f32).collect(), components, eigenvalues)
}

/// Stage 1 output: the fitted `VarPCA` basis (Algorithm 1).
#[derive(Debug, Clone)]
pub struct VarPcaStage {
    /// Eigenbasis in descending-eigenvalue order (not yet permuted to a
    /// subspace layout).
    pub pca: Pca,
}

impl VarPcaStage {
    /// Validates `cfg` against `data` and fits the eigendecomposition.
    pub fn compute(data: &Matrix, cfg: &VaqConfig) -> Result<VarPcaStage, VaqError> {
        let _span = crate::obs::span("train.varpca");
        cfg.validate()?;
        if data.rows() == 0 {
            return Err(VaqError::EmptyData);
        }
        if cfg.num_subspaces > data.cols() {
            return Err(VaqError::BadConfig(format!(
                "num_subspaces {} out of range for dim {}",
                cfg.num_subspaces,
                data.cols()
            )));
        }
        // Stage entry points are strict: `Sanitize` happens in
        // `Vaq::train` before the chain starts.
        if let Some((row, col)) = first_non_finite(data) {
            return Err(VaqError::NonFinite { row, col });
        }
        let fitted = if faults::fired("varpca.fit") {
            Err(LinalgError::NoConvergence { routine: "sym_eigen (injected)", iterations: 0 })
        } else {
            Pca::fit(data)
        };
        let pca = match fitted {
            Ok(pca) => pca,
            Err(LinalgError::NoConvergence { .. }) => {
                faults::note_degradation("varpca.fit: axis-aligned variance fallback");
                axis_aligned_pca(data)
            }
            Err(e) => return Err(e.into()),
        };
        Ok(VarPcaStage { pca })
    }

    /// Stage 2: subspace construction + partial balancing (Algorithm 2,
    /// lines 2–9). Permutes the projection to the layout's PC order.
    pub fn plan_subspaces(mut self, cfg: &VaqConfig) -> Result<SubspacePlan, VaqError> {
        let _span = crate::obs::span("train.subspace_plan");
        let built = if faults::fired("subspaces.plan") {
            Err(VaqError::Injected { site: "subspaces.plan" })
        } else {
            SubspaceLayout::build(
                self.pca.eigenvalues(),
                cfg.num_subspaces,
                cfg.subspace_mode,
                cfg.partial_balance,
                cfg.seed,
            )
        };
        let layout = match built {
            Ok(layout) => layout,
            // Clustered construction can fail on degenerate variance
            // vectors (e.g. too few distinct values to form m non-empty
            // clusters); the uniform layout is always well-defined, so
            // degrade to it instead of aborting training.
            Err(_) if cfg.subspace_mode == SubspaceMode::Clustered => {
                faults::note_degradation("subspaces.plan: uniform layout fallback");
                SubspaceLayout::build(
                    self.pca.eigenvalues(),
                    cfg.num_subspaces,
                    SubspaceMode::Uniform,
                    cfg.partial_balance,
                    cfg.seed,
                )?
            }
            Err(e) => return Err(e),
        };
        // The projection must follow the same PC order as the layout.
        self.pca.permute_components(&layout.perm);
        let plan = SubspacePlan { pca: self.pca, layout };
        plan.debug_audit("stage 2 (subspace plan)");
        Ok(plan)
    }
}

/// Stage 2 output: permuted projection + subspace layout.
#[derive(Debug, Clone)]
pub struct SubspacePlan {
    /// Projection permuted to the layout's PC order.
    pub pca: Pca,
    /// The subspace layout (column ranges, importance shares).
    pub layout: SubspaceLayout,
}

impl SubspacePlan {
    /// Stage 3: MILP bit allocation over the layout's importance shares
    /// (Algorithm 2), honouring `cfg.allocation_constraints`.
    pub fn allocate_bits(self, cfg: &VaqConfig) -> Result<BitPlan, VaqError> {
        let _span = crate::obs::span("train.bit_plan");
        let bits = if cfg.allocation_constraints.is_empty() {
            allocate_bits(
                &self.layout.variance_share,
                cfg.budget_bits,
                cfg.min_bits,
                cfg.max_bits,
                cfg.allocation,
            )?
        } else {
            if cfg.allocation != AllocationStrategy::Adaptive {
                return Err(VaqError::BadConfig(
                    "allocation constraints require the adaptive strategy".into(),
                ));
            }
            allocate_bits_constrained(
                &self.layout.variance_share,
                cfg.budget_bits,
                cfg.min_bits,
                cfg.max_bits,
                &cfg.allocation_constraints,
            )?
        };
        let plan = BitPlan { pca: self.pca, layout: self.layout, bits };
        if cfg!(debug_assertions) {
            let report = plan.audit_constraints(cfg);
            assert!(report.is_ok(), "invariant audit failed after stage 3 (bit plan):\n{report}");
        }
        Ok(plan)
    }
}

/// Stage 3 output: the per-subspace bit allocation.
#[derive(Debug, Clone)]
pub struct BitPlan {
    /// Projection (carried forward).
    pub pca: Pca,
    /// Subspace layout (carried forward).
    pub layout: SubspaceLayout,
    /// Bits per subspace, summing to the budget.
    pub bits: Vec<usize>,
}

impl BitPlan {
    /// Stage 4: project the data, learn variable-sized dictionaries, and
    /// encode the database (Algorithm 3, part 1).
    pub fn train_dictionaries(
        self,
        data: &Matrix,
        cfg: &VaqConfig,
    ) -> Result<DictionaryStage, VaqError> {
        let _span = crate::obs::span("train.dictionaries");
        if faults::fired("dictionary.train") {
            return Err(VaqError::Injected { site: "dictionary.train" });
        }
        let projected = self.pca.transform(data)?;
        let encoder =
            Encoder::train(&projected, &self.layout, &self.bits, cfg.train_iters, cfg.seed)?;
        let codes = encoder.encode_all(&projected);
        let stage = DictionaryStage {
            pca: self.pca,
            layout: self.layout,
            bits: self.bits,
            encoder,
            codes,
            n: data.rows(),
        };
        stage.debug_audit("stage 4 (dictionaries)");
        Ok(stage)
    }
}

/// Stage 4 output: trained dictionaries and the encoded database.
#[derive(Debug, Clone)]
pub struct DictionaryStage {
    /// Projection (carried forward).
    pub pca: Pca,
    /// Subspace layout (carried forward).
    pub layout: SubspaceLayout,
    /// Bit allocation (carried forward).
    pub bits: Vec<usize>,
    /// Trained variable-sized dictionaries.
    pub encoder: Encoder,
    /// The `n × m` code array.
    pub codes: Vec<u16>,
    /// Number of encoded vectors.
    pub n: usize,
}

impl DictionaryStage {
    /// Stage 5: TI partitioning (Algorithm 3, part 2) and assembly of the
    /// finished index. `cfg.ti_clusters == 0` skips the partition
    /// (EA-only queries).
    pub fn build_ti(self, cfg: &VaqConfig) -> Result<Vaq, VaqError> {
        let _span = crate::obs::span("train.ti_build");
        let ti = if cfg.ti_clusters > 0 {
            let built = if faults::fired("ti.build") {
                Err(VaqError::Injected { site: "ti.build" })
            } else {
                TiPartition::build(
                    &self.encoder,
                    &self.codes,
                    self.n,
                    cfg.ti_clusters,
                    cfg.ti_prefix_subspaces,
                    cfg.seed ^ 0x71,
                )
            };
            match built {
                Ok(ti) => Some(ti),
                // The TI partition is an accelerator, not a correctness
                // requirement: the engine degrades TiEa to a plain
                // early-abandon scan when it is absent, so a failed build
                // costs speed, never answers.
                Err(_) => {
                    faults::note_degradation("ti.build: partition dropped, EA-only queries");
                    None
                }
            }
        } else {
            None
        };
        // Build the blocked code layout for the quantized SIMD scan once,
        // at encode time; subspaces wider than 8 bits are simply left out
        // (the scan folds their table minima into its bound).
        let packed = vaq_linalg::PackedCodes::pack(
            &self.codes,
            &self.encoder.table_sizes().collect::<Vec<_>>(),
            self.n,
        );
        crate::obs::note_truncated_packing(&packed, "pipeline.encode");
        let vaq = Vaq {
            pca: self.pca,
            layout: self.layout,
            bits: self.bits,
            encoder: self.encoder,
            codes: self.codes,
            n: self.n,
            ti,
            default_strategy: SearchStrategy::TiEa { visit_frac: cfg.ti_visit_frac },
            packed,
        };
        vaq.debug_audit("stage 5 (TI build)");
        Ok(vaq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_dataset::SyntheticSpec;

    #[test]
    fn staged_pipeline_matches_monolithic_train() {
        let ds = SyntheticSpec::sift_like().generate(400, 0, 8);
        let cfg = VaqConfig::new(48, 8).with_ti_clusters(16).with_seed(4);
        let staged = VarPcaStage::compute(&ds.data, &cfg)
            .unwrap()
            .plan_subspaces(&cfg)
            .unwrap()
            .allocate_bits(&cfg)
            .unwrap()
            .train_dictionaries(&ds.data, &cfg)
            .unwrap()
            .build_ti(&cfg)
            .unwrap();
        let monolithic = Vaq::train(&ds.data, &cfg).unwrap();
        assert_eq!(staged.bits(), monolithic.bits());
        assert_eq!(staged.code(7), monolithic.code(7));
        assert_eq!(staged.search(ds.data.row(3), 5), monolithic.search(ds.data.row(3), 5));
    }

    #[test]
    fn one_varpca_serves_many_budgets() {
        // Forking after stage 1 re-uses the eigenbasis across budgets.
        let ds = SyntheticSpec::sald_like().generate(300, 0, 6);
        let base = VaqConfig::new(32, 8).with_ti_clusters(0);
        let stage1 = VarPcaStage::compute(&ds.data, &base).unwrap();
        for budget in [32usize, 64, 96] {
            let cfg = VaqConfig::new(budget, 8).with_ti_clusters(0);
            let vaq = stage1
                .clone()
                .plan_subspaces(&cfg)
                .unwrap()
                .allocate_bits(&cfg)
                .unwrap()
                .train_dictionaries(&ds.data, &cfg)
                .unwrap()
                .build_ti(&cfg)
                .unwrap();
            assert_eq!(vaq.code_bits(), budget);
        }
    }

    #[test]
    fn bit_plan_is_inspectable_before_dictionaries() {
        let ds = SyntheticSpec::sald_like().generate(200, 0, 2);
        let cfg = VaqConfig::new(40, 8).with_ti_clusters(0);
        let plan = VarPcaStage::compute(&ds.data, &cfg)
            .unwrap()
            .plan_subspaces(&cfg)
            .unwrap()
            .allocate_bits(&cfg)
            .unwrap();
        assert_eq!(plan.bits.len(), 8);
        assert_eq!(plan.bits.iter().sum::<usize>(), 40);
        // Importance-ordered subspaces get non-increasing bits on a steep
        // spectrum... not guaranteed in general, but the sum always holds.
    }

    #[test]
    fn validation_fires_before_any_numeric_work() {
        let ds = SyntheticSpec::deep_like().generate(50, 0, 3);
        let mut cfg = VaqConfig::new(64, 8);
        cfg.ti_visit_frac = 0.0;
        assert!(matches!(VarPcaStage::compute(&ds.data, &cfg), Err(VaqError::BadConfig(_))));
    }
}
