//! # Variance-Aware Quantization (VAQ)
//!
//! From-scratch Rust implementation of the primary contribution of
//! *"Fast Adaptive Similarity Search through Variance-Aware Quantization"*
//! (Paparrizos, Edian, Liu, Elmore, Franklin — ICDE 2022).
//!
//! VAQ is a product-quantization-family encoder that, instead of giving
//! every subspace the same dictionary, **adapts dictionary sizes to the
//! importance of each subspace** (its share of the data variance) and
//! accelerates queries with two hardware-oblivious pruning strategies.
//! The pipeline (paper Algorithms 1–5):
//!
//! 1. [`subspaces`] — `VarPCA`: eigendecompose the covariance, use
//!    normalized eigenvalue energy as per-dimension importance (Eq. 6);
//!    build subspaces either uniformly or by clustering the variance
//!    vector (non-uniform), repair the importance ordering, and *partially
//!    balance* importance by bounded PC swaps (§III-B, §III-C).
//! 2. [`allocation`] — solve a mixed-integer linear program to allocate the
//!    bit budget across subspaces proportionally to their importance,
//!    under constraints C1–C4 (§III-C).
//! 3. [`encoder`] — build *variable-sized* dictionaries with k-means
//!    (hierarchical beyond 2^10 items) and encode the database (§III-D).
//! 4. [`ti`] + [`search`] — partition the encoded data around sampled
//!    centroids, cache code→centroid distances, sort each partition, and
//!    at query time combine triangle-inequality data skipping with
//!    early-abandoned table lookups (§III-E).
//!
//! The entry point is [`Vaq::train`] / [`Vaq::search`]:
//!
//! ```
//! use vaq_core::{Vaq, VaqConfig};
//! use vaq_linalg::Matrix;
//!
//! // 64 three-dimensional vectors on a noisy line.
//! let rows: Vec<Vec<f32>> = (0..64)
//!     .map(|i| {
//!         let t = i as f32 / 8.0;
//!         vec![t, 2.0 * t + 0.01 * (i as f32).sin(), 0.1 * (i % 3) as f32]
//!     })
//!     .collect();
//! let data = Matrix::from_rows(&rows);
//! let cfg = VaqConfig::new(12, 3); // 12-bit budget, 3 subspaces
//! let vaq = Vaq::train(&data, &cfg).unwrap();
//! let hits = vaq.search(data.row(10), 3).unwrap();
//! assert_eq!(hits[0].index, 10); // a database vector finds itself
//! ```

#![forbid(unsafe_code)]

pub mod allocation;
pub mod audit;
pub mod crc;
pub mod encoder;
pub mod engine;
pub mod faults;
pub mod ivf;
pub mod obs;
pub mod persist;
pub mod pipeline;
pub mod search;
pub mod segment;
pub mod subspaces;
pub mod sync;
pub mod threads;
pub mod ti;
pub mod vaq;

pub use allocation::{
    allocate_bits, allocate_bits_constrained, greedy_allocation, AllocationConstraint,
    AllocationStrategy,
};
pub use audit::{Audit, AuditIssue, AuditReport};
pub use engine::{IndexView, QueryEngine};
pub use ivf::{VaqIvf, VaqIvfConfig};
pub use pipeline::{BitPlan, DictionaryStage, SubspacePlan, VarPcaStage};
pub use search::{Neighbor, SearchStats, SearchStrategy};
pub use segment::{SegmentPolicy, SegmentSearcher, SegmentSet, SegmentedVaq};
pub use subspaces::{SubspaceLayout, SubspaceMode};
pub use vaq::{IngressPolicy, Vaq, VaqConfig};

use std::fmt;
use vaq_kmeans::KMeansError;
use vaq_linalg::LinalgError;
use vaq_milp::SolveError;

/// Errors produced while training or querying VAQ.
#[derive(Debug, Clone)]
pub enum VaqError {
    /// Training data was empty.
    EmptyData,
    /// Configuration is internally inconsistent (detail in message).
    BadConfig(String),
    /// The bit budget cannot satisfy the per-subspace bounds.
    InfeasibleBudget {
        /// Requested total bits.
        budget: usize,
        /// Number of subspaces.
        subspaces: usize,
        /// Minimum bits per subspace.
        min_bits: usize,
        /// Maximum bits per subspace.
        max_bits: usize,
    },
    /// Ingress validation found a NaN/Inf value and the configured
    /// [`IngressPolicy`] is `Reject`.
    NonFinite {
        /// Row of the first offending value.
        row: usize,
        /// Column of the first offending value.
        col: usize,
    },
    /// A linear-algebra routine failed.
    Linalg(LinalgError),
    /// A k-means dictionary build failed.
    KMeans(KMeansError),
    /// The MILP solver failed in a way no fallback covers.
    Solve(SolveError),
    /// A fault-injection site fired (only with the `faults` feature).
    Injected {
        /// The registered fault-site name.
        site: &'static str,
    },
    /// An internal numeric routine failed (propagated message).
    Numeric(String),
    /// A filesystem operation failed while saving or loading an index
    /// (or appending to its write-ahead log). Unlike [`BadConfig`], the
    /// underlying [`std::io::Error`] is preserved so callers can walk
    /// the `source()` chain and match on `ErrorKind`.
    ///
    /// [`BadConfig`]: VaqError::BadConfig
    Io {
        /// The file or directory the operation targeted.
        path: std::path::PathBuf,
        /// The underlying IO failure (`Arc`-wrapped: `std::io::Error` is
        /// not `Clone`, and `VaqError` must stay cheaply clonable).
        source: crate::sync::Arc<std::io::Error>,
    },
}

impl VaqError {
    /// Builds an [`VaqError::Io`] from a path and the failed operation's
    /// error.
    pub fn io(path: impl Into<std::path::PathBuf>, source: std::io::Error) -> VaqError {
        VaqError::Io { path: path.into(), source: crate::sync::Arc::new(source) }
    }
}

/// Structural equality. Two [`VaqError::Io`] values compare equal when
/// their paths, [`std::io::ErrorKind`]s, and rendered messages agree —
/// `std::io::Error` itself has no equality, and tests only ever compare
/// errors for shape, never for OS-handle identity.
impl PartialEq for VaqError {
    fn eq(&self, other: &Self) -> bool {
        use VaqError::*;
        match (self, other) {
            (EmptyData, EmptyData) => true,
            (BadConfig(a), BadConfig(b)) => a == b,
            (
                InfeasibleBudget { budget, subspaces, min_bits, max_bits },
                InfeasibleBudget { budget: b2, subspaces: s2, min_bits: lo2, max_bits: hi2 },
            ) => budget == b2 && subspaces == s2 && min_bits == lo2 && max_bits == hi2,
            (NonFinite { row, col }, NonFinite { row: r2, col: c2 }) => row == r2 && col == c2,
            (Linalg(a), Linalg(b)) => a == b,
            (KMeans(a), KMeans(b)) => a == b,
            (Solve(a), Solve(b)) => a == b,
            (Injected { site: a }, Injected { site: b }) => a == b,
            (Numeric(a), Numeric(b)) => a == b,
            (Io { path: p1, source: e1 }, Io { path: p2, source: e2 }) => {
                p1 == p2 && e1.kind() == e2.kind() && e1.to_string() == e2.to_string()
            }
            _ => false,
        }
    }
}

impl fmt::Display for VaqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VaqError::EmptyData => write!(f, "training data is empty"),
            VaqError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            VaqError::InfeasibleBudget { budget, subspaces, min_bits, max_bits } => write!(
                f,
                "budget of {budget} bits cannot be split over {subspaces} subspaces \
                 with {min_bits}..={max_bits} bits each"
            ),
            VaqError::NonFinite { row, col } => {
                write!(f, "ingress rejected non-finite value at row {row}, column {col}")
            }
            VaqError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            VaqError::KMeans(e) => write!(f, "k-means failure: {e}"),
            VaqError::Solve(e) => write!(f, "bit-allocation solver failure: {e}"),
            VaqError::Injected { site } => write!(f, "injected fault at site `{site}`"),
            VaqError::Numeric(msg) => write!(f, "numeric failure: {msg}"),
            VaqError::Io { path, source } => {
                write!(f, "io failure at {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for VaqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VaqError::Linalg(e) => Some(e),
            VaqError::KMeans(e) => Some(e),
            VaqError::Solve(e) => Some(e),
            VaqError::Io { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<LinalgError> for VaqError {
    fn from(e: LinalgError) -> Self {
        VaqError::Linalg(e)
    }
}

impl From<KMeansError> for VaqError {
    fn from(e: KMeansError) -> Self {
        VaqError::KMeans(e)
    }
}

impl From<SolveError> for VaqError {
    fn from(e: SolveError) -> Self {
        VaqError::Solve(e)
    }
}
