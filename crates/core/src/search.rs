//! Query-execution vocabulary types (paper §III-E, Algorithm 4).
//!
//! The execution loop itself lives in [`crate::engine`]; this module keeps
//! the types it speaks — results, strategies, and work counters — plus a
//! deprecated free-function shim for callers of the old API.
//!
//! Three strategies, composable exactly as the Figure 7 ablation studies
//! them:
//!
//! * [`SearchStrategy::FullScan`] — the "Heap" baseline: accumulate all
//!   `m` lookup-table entries for every encoded vector.
//! * [`SearchStrategy::EarlyAbandon`] — subspace skipping: stop
//!   accumulating a vector's distance the moment it exceeds the k-th best
//!   so far. Because VAQ orders subspaces by descending variance, the
//!   first few terms already approximate the full distance well, so most
//!   vectors abandon early. EA is *exact* with respect to the ADC
//!   ranking — it returns the same top-k as the full scan.
//! * [`SearchStrategy::TiEa`] — data skipping + subspace skipping: visit
//!   only the closest fraction of TI clusters; inside each sorted cluster,
//!   two binary searches drop every member the triangle inequality can
//!   prune, and the survivors go through the early-abandon loop. Visiting
//!   all clusters keeps the ADC ranking exact; visiting a fraction is the
//!   approximation knob the paper tunes (25% / 10%).
//! * [`SearchStrategy::Quantized`] — the Quick-ADC-style SIMD scan: sum
//!   8-bit-quantized tables over the blocked code layout, prune every
//!   vector whose certified lower bound cannot beat the current k-th
//!   best, and rerank the survivors through the exact `f32` tables.
//!   Exact with respect to the ADC ranking (identical results to
//!   [`SearchStrategy::EarlyAbandon`]); indexes whose subspaces all
//!   exceed 8 bits transparently fall back to the early-abandon loop.

use crate::encoder::Encoder;
use crate::engine::{IndexView, QueryEngine};
use crate::ti::TiPartition;
use std::cmp::Ordering;
use std::ops::{Add, AddAssign};

/// One search result: database row and *unsquared* approximate (ADC)
/// distance, as Algorithm 4 reports (`distance = sqrt(distance)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Database row index.
    pub index: u32,
    /// Approximate Euclidean distance to the query.
    pub distance: f32,
}

impl Eq for Neighbor {}
impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        // `total_cmp`, not `partial_cmp(..).unwrap_or(Equal)`: the latter
        // makes NaN compare Equal to *everything*, a non-transitive order
        // that silently corrupts the top-k BinaryHeap. Under total order,
        // NaN sorts above +inf, so a poisoned distance loses every
        // "is it better" comparison instead of scrambling the heap.
        self.distance.total_cmp(&other.distance).then_with(|| self.index.cmp(&other.index))
    }
}

/// Query execution strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SearchStrategy {
    /// Plain heap scan: all lookups for every vector.
    FullScan,
    /// Early-abandon lookups (subspace skipping) over every vector.
    EarlyAbandon,
    /// Triangle-inequality data skipping over the closest
    /// `visit_frac` of clusters, with early abandoning inside.
    TiEa {
        /// Fraction of TI clusters to visit, in `(0, 1]` (paper: 0.25 and
        /// 0.10).
        visit_frac: f64,
    },
    /// SIMD quantized-table scan with exact rerank (Quick-ADC style).
    /// Same results as [`SearchStrategy::EarlyAbandon`].
    Quantized,
}

/// Counters describing how much work a query did — used by the Figure 7
/// pruning ablation and by tests asserting that pruning actually prunes.
///
/// Stats are additive: summing the per-query stats of a batch (via `+` /
/// `+=`) yields the batch totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Encoded vectors whose distance accumulation started.
    pub vectors_visited: usize,
    /// Encoded vectors skipped outright by the triangle inequality (or by
    /// not visiting their cluster).
    pub vectors_skipped: usize,
    /// Individual table lookups performed.
    pub lookups: usize,
    /// Lookups avoided by early abandoning (subspaces not accumulated).
    pub lookups_skipped: usize,
    /// Vectors dismissed by the quantized scan's lower bound alone,
    /// without touching the exact `f32` tables.
    pub quantized_pruned: usize,
    /// Times the lookup-table arena had to grow while preparing this
    /// query's tables. Zero in the steady state — the batch path asserts
    /// on this to prove per-query table allocation is gone.
    pub table_reallocations: usize,
}

impl AddAssign for SearchStats {
    fn add_assign(&mut self, rhs: SearchStats) {
        self.vectors_visited += rhs.vectors_visited;
        self.vectors_skipped += rhs.vectors_skipped;
        self.lookups += rhs.lookups;
        self.lookups_skipped += rhs.lookups_skipped;
        self.quantized_pruned += rhs.quantized_pruned;
        self.table_reallocations += rhs.table_reallocations;
    }
}

impl Add for SearchStats {
    type Output = SearchStats;
    fn add(mut self, rhs: SearchStats) -> SearchStats {
        self += rhs;
        self
    }
}

/// Executes a query against the encoded database.
///
/// `projected_query` must already be in VAQ's permuted PC space. `codes`
/// is the `n × m` code array. Returns up to `k` neighbors, best first,
/// plus work counters.
#[deprecated(
    since = "0.2.0",
    note = "builds a throwaway lookup-table arena per call; hold a \
            `QueryEngine` and search through an `IndexView` instead"
)]
pub fn execute(
    encoder: &Encoder,
    codes: &[u16],
    n: usize,
    ti: Option<&TiPartition>,
    projected_query: &[f32],
    k: usize,
    strategy: SearchStrategy,
) -> (Vec<Neighbor>, SearchStats) {
    let view = IndexView::from_encoder(encoder, codes, n).with_ti(ti);
    QueryEngine::for_view(&view).search_with(&view, projected_query, k, strategy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbors_order_by_distance_then_index() {
        let a = Neighbor { index: 3, distance: 1.0 };
        let b = Neighbor { index: 1, distance: 2.0 };
        let c = Neighbor { index: 0, distance: 1.0 };
        let mut v = vec![b, a, c];
        v.sort();
        assert_eq!(v, vec![c, a, b]);
    }

    #[test]
    fn stats_sum_component_wise() {
        let a = SearchStats {
            vectors_visited: 1,
            vectors_skipped: 2,
            lookups: 3,
            lookups_skipped: 4,
            quantized_pruned: 5,
            table_reallocations: 1,
        };
        let b = SearchStats {
            vectors_visited: 10,
            vectors_skipped: 20,
            lookups: 30,
            lookups_skipped: 40,
            quantized_pruned: 50,
            table_reallocations: 0,
        };
        let mut acc = SearchStats::default();
        acc += a;
        let sum = acc + b;
        assert_eq!(
            sum,
            SearchStats {
                vectors_visited: 11,
                vectors_skipped: 22,
                lookups: 33,
                lookups_skipped: 44,
                quantized_pruned: 55,
                table_reallocations: 1,
            }
        );
    }

    #[test]
    fn nan_distance_cannot_corrupt_the_heap() {
        use std::collections::BinaryHeap;
        // Under the old `partial_cmp(..).unwrap_or(Equal)` order, NaN
        // compared Equal to everything; sift-up/down decisions became
        // inconsistent and the heap's max was no longer the max. With
        // `total_cmp`, NaN is the largest value and behaves like +inf.
        let nan = Neighbor { index: 7, distance: f32::NAN };
        let near = Neighbor { index: 1, distance: 0.5 };
        let far = Neighbor { index: 2, distance: 99.0 };
        assert_eq!(nan.cmp(&near), Ordering::Greater);
        assert_eq!(nan.cmp(&far), Ordering::Greater);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);

        let mut heap = BinaryHeap::new();
        for x in [far, nan, near] {
            heap.push(x);
        }
        // The NaN entry is the worst element, so a bounded top-k heap
        // evicts it first and the real neighbors survive.
        assert_eq!(heap.pop().map(|x| x.index), Some(7));
        assert_eq!(heap.pop(), Some(far));
        assert_eq!(heap.pop(), Some(near));
    }
}
