//! Query execution (paper §III-E, Algorithm 4).
//!
//! Three strategies, composable exactly as the Figure 7 ablation studies
//! them:
//!
//! * [`SearchStrategy::FullScan`] — the "Heap" baseline: accumulate all
//!   `m` lookup-table entries for every encoded vector.
//! * [`SearchStrategy::EarlyAbandon`] — subspace skipping: stop
//!   accumulating a vector's distance the moment it exceeds the k-th best
//!   so far. Because VAQ orders subspaces by descending variance, the
//!   first few terms already approximate the full distance well, so most
//!   vectors abandon early. EA is *exact* with respect to the ADC
//!   ranking — it returns the same top-k as the full scan.
//! * [`SearchStrategy::TiEa`] — data skipping + subspace skipping: visit
//!   only the closest fraction of TI clusters; inside each sorted cluster,
//!   two binary searches drop every member the triangle inequality can
//!   prune, and the survivors go through the early-abandon loop. Visiting
//!   all clusters keeps the ADC ranking exact; visiting a fraction is the
//!   approximation knob the paper tunes (25% / 10%).

use crate::encoder::Encoder;
use crate::ti::TiPartition;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One search result: database row and *unsquared* approximate (ADC)
/// distance, as Algorithm 4 reports (`distance = sqrt(distance)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Database row index.
    pub index: u32,
    /// Approximate Euclidean distance to the query.
    pub distance: f32,
}

impl Eq for Neighbor {}
impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        self.distance
            .partial_cmp(&other.distance)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.index.cmp(&other.index))
    }
}

/// Query execution strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SearchStrategy {
    /// Plain heap scan: all lookups for every vector.
    FullScan,
    /// Early-abandon lookups (subspace skipping) over every vector.
    EarlyAbandon,
    /// Triangle-inequality data skipping over the closest
    /// `visit_frac` of clusters, with early abandoning inside.
    TiEa {
        /// Fraction of TI clusters to visit, in `(0, 1]` (paper: 0.25 and
        /// 0.10).
        visit_frac: f64,
    },
}

/// Counters describing how much work a query did — used by the Figure 7
/// pruning ablation and by tests asserting that pruning actually prunes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Encoded vectors whose distance accumulation started.
    pub vectors_visited: usize,
    /// Encoded vectors skipped outright by the triangle inequality (or by
    /// not visiting their cluster).
    pub vectors_skipped: usize,
    /// Individual table lookups performed.
    pub lookups: usize,
    /// Lookups avoided by early abandoning (subspaces not accumulated).
    pub lookups_skipped: usize,
}

/// Executes a query against the encoded database.
///
/// `projected_query` must already be in VAQ's permuted PC space. `codes`
/// is the `n × m` code array. Returns up to `k` neighbors, best first,
/// plus work counters.
pub fn execute(
    encoder: &Encoder,
    codes: &[u16],
    n: usize,
    ti: Option<&TiPartition>,
    projected_query: &[f32],
    k: usize,
    strategy: SearchStrategy,
) -> (Vec<Neighbor>, SearchStats) {
    let tables = encoder.lookup_tables(projected_query);
    let m = encoder.num_subspaces();
    let k = k.max(1).min(n.max(1));
    let mut stats = SearchStats::default();
    // The heap stores *squared* accumulated distances; square roots are
    // taken once at the end (monotone, so the ranking is unchanged).
    let mut heap: BinaryHeap<Neighbor> = BinaryHeap::with_capacity(k + 1);

    match strategy {
        SearchStrategy::FullScan => {
            for i in 0..n {
                let code = &codes[i * m..(i + 1) * m];
                let mut dist = 0.0f32;
                for (t, &c) in tables.iter().zip(code.iter()) {
                    dist += t[c as usize];
                }
                stats.vectors_visited += 1;
                stats.lookups += m;
                push_k(&mut heap, k, i as u32, dist);
            }
        }
        SearchStrategy::EarlyAbandon => {
            for i in 0..n {
                scan_one(codes, m, &tables, i, &mut heap, k, &mut stats);
            }
        }
        SearchStrategy::TiEa { visit_frac } => {
            let Some(ti) = ti else {
                // No partition built: degrade to EA over everything.
                for i in 0..n {
                    scan_one(codes, m, &tables, i, &mut heap, k, &mut stats);
                }
                let out = finish(heap);
                return (out, stats);
            };
            let qd = ti.query_distances(projected_query);
            let order = ti.visit_order(&qd);
            let visit =
                ((visit_frac.clamp(0.0, 1.0) * order.len() as f64).ceil() as usize).max(1);
            for &ci in order.iter().take(visit) {
                let ci = ci as usize;
                let members = ti.cluster(ci);
                // Current best-so-far in metric (unsquared) space.
                let bsf = current_threshold(&heap, k).sqrt();
                let (lo, hi) = ti.survivor_window(ci, qd[ci], bsf);
                stats.vectors_skipped += lo + (members.len() - hi);
                for mem in &members[lo..hi] {
                    scan_one(codes, m, &tables, mem.idx as usize, &mut heap, k, &mut stats);
                }
            }
            for &ci in order.iter().skip(visit) {
                stats.vectors_skipped += ti.cluster(ci as usize).len();
            }
        }
    }
    (finish(heap), stats)
}

/// Early-abandoned accumulation of one encoded vector.
#[inline]
fn scan_one(
    codes: &[u16],
    m: usize,
    tables: &[Vec<f32>],
    i: usize,
    heap: &mut BinaryHeap<Neighbor>,
    k: usize,
    stats: &mut SearchStats,
) {
    let code = &codes[i * m..(i + 1) * m];
    let threshold = current_threshold(heap, k);
    stats.vectors_visited += 1;
    let mut dist = 0.0f32;
    let mut s = 0usize;
    while s < m {
        dist += tables[s][code[s] as usize];
        s += 1;
        if dist >= threshold {
            stats.lookups += s;
            stats.lookups_skipped += m - s;
            return; // abandoned — cannot enter the top-k
        }
    }
    stats.lookups += m;
    push_k(heap, k, i as u32, dist);
}

/// Current pruning threshold: the k-th best squared distance so far, or
/// `INFINITY` while the heap is still warming up (Algorithm 4 computes the
/// first `K` candidates fully).
#[inline]
fn current_threshold(heap: &BinaryHeap<Neighbor>, k: usize) -> f32 {
    if heap.len() < k {
        f32::INFINITY
    } else {
        heap.peek().map(|n| n.distance).unwrap_or(f32::INFINITY)
    }
}

#[inline]
fn push_k(heap: &mut BinaryHeap<Neighbor>, k: usize, index: u32, dist: f32) {
    if heap.len() < k {
        heap.push(Neighbor { index, distance: dist });
    } else if let Some(top) = heap.peek() {
        if dist < top.distance {
            heap.pop();
            heap.push(Neighbor { index, distance: dist });
        }
    }
}

fn finish(heap: BinaryHeap<Neighbor>) -> Vec<Neighbor> {
    let mut out: Vec<Neighbor> = heap
        .into_vec()
        .into_iter()
        .map(|n| Neighbor { index: n.index, distance: n.distance.max(0.0).sqrt() })
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subspaces::{SubspaceLayout, SubspaceMode};
    use vaq_linalg::Matrix;

    fn setup(n: usize) -> (Matrix, Encoder, Vec<u16>, TiPartition) {
        let d = 8;
        let mut s = 21u64;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(d);
            for j in 0..d {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = ((s >> 40) as f32 / (1u32 << 23) as f32) - 1.0;
                row.push(v * 3.0 / (1.0 + j as f32));
            }
            rows.push(row);
        }
        let data = Matrix::from_rows(&rows);
        let vars: Vec<f64> = (0..d).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let layout = SubspaceLayout::build(&vars, 4, SubspaceMode::Uniform, false, 0).unwrap();
        let enc = Encoder::train(&data, &layout, &[5, 4, 3, 2], 15, 0).unwrap();
        let codes = enc.encode_all(&data);
        let ti = TiPartition::build(&enc, &codes, n, 16, 2, 1).unwrap();
        (data, enc, codes, ti)
    }

    #[test]
    fn ea_returns_identical_results_to_full_scan() {
        let (data, enc, codes, _) = setup(600);
        for qi in [0usize, 100, 399] {
            let q = data.row(qi);
            let (full, _) =
                execute(&enc, &codes, 600, None, q, 10, SearchStrategy::FullScan);
            let (ea, _) =
                execute(&enc, &codes, 600, None, q, 10, SearchStrategy::EarlyAbandon);
            assert_eq!(
                full.iter().map(|n| n.index).collect::<Vec<_>>(),
                ea.iter().map(|n| n.index).collect::<Vec<_>>(),
                "query {qi}"
            );
            for (a, b) in full.iter().zip(ea.iter()) {
                assert!((a.distance - b.distance).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn ti_with_full_visit_matches_full_scan() {
        // Visiting 100% of clusters keeps TI pruning exact.
        let (data, enc, codes, ti) = setup(500);
        for qi in [3usize, 250] {
            let q = data.row(qi);
            let (full, _) =
                execute(&enc, &codes, 500, None, q, 10, SearchStrategy::FullScan);
            let (tiea, _) = execute(
                &enc,
                &codes,
                500,
                Some(&ti),
                q,
                10,
                SearchStrategy::TiEa { visit_frac: 1.0 },
            );
            assert_eq!(
                full.iter().map(|n| n.index).collect::<Vec<_>>(),
                tiea.iter().map(|n| n.index).collect::<Vec<_>>(),
                "query {qi}"
            );
        }
    }

    #[test]
    fn ea_skips_lookups() {
        let (data, enc, codes, _) = setup(800);
        let q = data.row(1);
        let (_, full_stats) =
            execute(&enc, &codes, 800, None, q, 5, SearchStrategy::FullScan);
        let (_, ea_stats) =
            execute(&enc, &codes, 800, None, q, 5, SearchStrategy::EarlyAbandon);
        assert_eq!(full_stats.lookups, 800 * 4);
        assert!(ea_stats.lookups < full_stats.lookups, "EA did not skip any lookups");
        assert_eq!(ea_stats.lookups + ea_stats.lookups_skipped, 800 * 4);
    }

    #[test]
    fn ti_skips_vectors() {
        let (data, enc, codes, ti) = setup(800);
        let q = data.row(2);
        let (_, stats) = execute(
            &enc,
            &codes,
            800,
            Some(&ti),
            q,
            5,
            SearchStrategy::TiEa { visit_frac: 0.25 },
        );
        assert!(stats.vectors_skipped > 0, "TI skipped nothing");
        assert_eq!(stats.vectors_visited + stats.vectors_skipped, 800);
    }

    #[test]
    fn partial_visit_recall_degrades_gracefully() {
        // Visiting 25% of clusters must still recover most of the exact
        // ADC top-10 (clusters are visited nearest-first).
        let (data, enc, codes, ti) = setup(1000);
        let mut overlap_sum = 0.0;
        let queries = [0usize, 123, 456, 789];
        for &qi in &queries {
            let q = data.row(qi);
            let (full, _) =
                execute(&enc, &codes, 1000, None, q, 10, SearchStrategy::FullScan);
            let (tiea, _) = execute(
                &enc,
                &codes,
                1000,
                Some(&ti),
                q,
                10,
                SearchStrategy::TiEa { visit_frac: 0.25 },
            );
            let full_set: std::collections::HashSet<u32> =
                full.iter().map(|n| n.index).collect();
            let overlap =
                tiea.iter().filter(|n| full_set.contains(&n.index)).count() as f64 / 10.0;
            overlap_sum += overlap;
        }
        let mean = overlap_sum / queries.len() as f64;
        assert!(mean > 0.5, "25% visit overlap too low: {mean}");
    }

    #[test]
    fn missing_partition_degrades_to_ea() {
        let (data, enc, codes, _) = setup(300);
        let q = data.row(0);
        let (a, _) = execute(
            &enc,
            &codes,
            300,
            None,
            q,
            10,
            SearchStrategy::TiEa { visit_frac: 0.25 },
        );
        let (b, _) = execute(&enc, &codes, 300, None, q, 10, SearchStrategy::EarlyAbandon);
        assert_eq!(
            a.iter().map(|n| n.index).collect::<Vec<_>>(),
            b.iter().map(|n| n.index).collect::<Vec<_>>()
        );
    }

    #[test]
    fn distances_are_sqrt_and_sorted() {
        let (data, enc, codes, _) = setup(200);
        let (res, _) =
            execute(&enc, &codes, 200, None, data.row(9), 15, SearchStrategy::FullScan);
        assert_eq!(res.len(), 15);
        for w in res.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        // A vector queried against itself has near-zero reconstructed
        // distance — certainly below the raw squared scale.
        assert!(res[0].distance < 3.0);
    }

    #[test]
    fn k_larger_than_n_returns_n() {
        let (data, enc, codes, _) = setup(50);
        let (res, _) =
            execute(&enc, &codes, 50, None, data.row(0), 500, SearchStrategy::FullScan);
        assert_eq!(res.len(), 50);
    }
}
