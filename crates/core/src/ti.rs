//! Triangle-inequality partitioning of the encoded data (paper §III-D
//! "Enabling Data Skipping" and the second half of Algorithm 3).
//!
//! After encoding, VAQ clusters the encoded vectors around a set of
//! randomly sampled encoded vectors (their *reconstructions* over the first
//! few, most important subspaces serve as centroids), caches each code's
//! distance to its cluster centroid, and keeps each cluster sorted by that
//! distance. At query time the triangle inequality
//! `d(q, x) ≥ |d(q, c) − d(x, c)|` lets whole runs of each sorted cluster
//! be skipped with two binary searches (the paper's Figure 5 example).
//!
//! All distances here are *unsquared* Euclidean (the triangle inequality
//! needs a true metric) in the prefix space of the first
//! `prefix_subspaces` subspaces. A prefix of non-negative per-subspace
//! contributions lower-bounds the full ADC distance, so pruning against the
//! prefix is safe with respect to the approximate ranking.
//!
//! # Memory layout
//!
//! Members are stored struct-of-arrays: one flat index array and one flat
//! distance array, both segmented by an `offsets` table (cluster `c` owns
//! elements `offsets[c]..offsets[c + 1]`, sorted ascending by distance).
//! The two flat arrays sit behind [`U32Storage`] / [`F32Storage`], so an
//! out-of-core index can map them straight from a `VAQ4` extent instead
//! of copying — the binary-search pruning reads the mapped distances in
//! place.

use crate::encoder::Encoder;
use crate::VaqError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vaq_linalg::{euclidean, F32Storage, Matrix, U32Storage};

/// One encoded vector inside a TI cluster (a build-time convenience; the
/// partition itself stores members struct-of-arrays).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Member {
    /// Database row index.
    pub idx: u32,
    /// Unsquared prefix-space distance to the cluster centroid.
    pub dist: f32,
}

/// The TI partition structure built once at encoding time.
#[derive(Debug, Clone)]
pub struct TiPartition {
    /// Cluster centroids in prefix space (one row per cluster).
    pub(crate) centroids: Matrix,
    /// `num_clusters + 1` boundaries into the flat member arrays.
    pub(crate) offsets: Vec<usize>,
    /// Member row indices, cluster-segmented, sorted by distance within
    /// each cluster.
    pub(crate) member_idx: U32Storage,
    /// Member centroid distances, aligned with `member_idx`.
    pub(crate) member_dist: F32Storage,
    /// Number of subspaces spanned by the prefix.
    pub(crate) prefix_subspaces: usize,
    /// Dimensionality of the prefix space.
    pub(crate) prefix_dim: usize,
}

impl TiPartition {
    /// Builds the partition from the encoded database.
    ///
    /// `codes` is the row-major `n × m` code array produced by
    /// [`Encoder::encode_all`]; `num_clusters` centroids are sampled from
    /// the encoded vectors themselves (paper: "VAQ randomly samples a few
    /// of them that form the cluster centroids").
    pub fn build(
        encoder: &Encoder,
        codes: &[u16],
        n: usize,
        num_clusters: usize,
        prefix_subspaces: usize,
        seed: u64,
    ) -> Result<TiPartition, VaqError> {
        if n == 0 {
            return Err(VaqError::EmptyData);
        }
        let m = encoder.num_subspaces();
        if codes.len() != n * m {
            return Err(VaqError::BadConfig(format!(
                "code array length {} does not match {n} × {m}",
                codes.len()
            )));
        }
        let prefix_subspaces = prefix_subspaces.clamp(1, m);
        let prefix_dim = encoder.ranges()[prefix_subspaces - 1].1;
        let c = num_clusters.clamp(1, n);

        // Sample centroid codes *without replacement* (partial
        // Fisher–Yates over the row ids) and reconstruct their prefixes.
        // Sampling with replacement would let duplicate picks produce
        // identical centroids, and since assignment ties break toward the
        // lower cluster id, every duplicate would be a permanently dead
        // cluster.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pool: Vec<u32> = (0..n as u32).collect();
        let mut centroids = Matrix::zeros(c, prefix_dim);
        for ci in 0..c {
            let j = ci + rng.gen_range(0..n - ci);
            pool.swap(ci, j);
            let pick = pool[ci] as usize;
            let code = &codes[pick * m..(pick + 1) * m];
            let rec = encoder.decode_prefix(code, prefix_subspaces);
            centroids.row_mut(ci).copy_from_slice(&rec);
        }

        // Assign every code to its nearest centroid (prefix space,
        // unsquared), parallel over rows.
        let mut assign: Vec<(u32, f32)> = vec![(0, 0.0); n];
        let workers = crate::threads::worker_count(n);
        let chunk = n.div_ceil(workers);
        crate::sync::thread::scope(|scope| {
            let mut rest: &mut [(u32, f32)] = &mut assign;
            let centroids = &centroids;
            for w in 0..workers {
                let start = w * chunk;
                if start >= n {
                    break;
                }
                let len = chunk.min(n - start);
                let (mine, tail) = rest.split_at_mut(len);
                rest = tail;
                scope.spawn(move || {
                    for (j, slot) in mine.iter_mut().enumerate() {
                        let i = start + j;
                        let code = &codes[i * m..(i + 1) * m];
                        let rec = encoder.decode_prefix(code, prefix_subspaces);
                        let mut best = 0u32;
                        let mut best_d = f32::INFINITY;
                        for (ci, crow) in centroids.iter_rows().enumerate() {
                            let d = euclidean(crow, &rec);
                            if d < best_d {
                                best_d = d;
                                best = ci as u32;
                            }
                        }
                        *slot = (best, best_d);
                    }
                });
            }
        });

        let mut buckets: Vec<Vec<Member>> = vec![Vec::new(); c];
        for (i, &(ci, d)) in assign.iter().enumerate() {
            buckets[ci as usize].push(Member { idx: i as u32, dist: d });
        }
        let mut offsets = Vec::with_capacity(c + 1);
        let mut member_idx = Vec::with_capacity(n);
        let mut member_dist = Vec::with_capacity(n);
        offsets.push(0);
        for mut cl in buckets {
            cl.sort_by(|a, b| a.dist.total_cmp(&b.dist).then_with(|| a.idx.cmp(&b.idx)));
            for mem in cl {
                member_idx.push(mem.idx);
                member_dist.push(mem.dist);
            }
            offsets.push(member_idx.len());
        }
        Ok(TiPartition {
            centroids,
            offsets,
            member_idx: member_idx.into(),
            member_dist: member_dist.into(),
            prefix_subspaces,
            prefix_dim,
        })
    }

    /// Reassembles a partition from persisted parts. `None` when the
    /// boundaries are not a monotone cover of the member arrays or the
    /// arrays disagree in length — *content* invariants (index range,
    /// sorted distances) are the loader's business: owned loads check
    /// them eagerly, mapped loads on first touch.
    pub(crate) fn from_parts(
        centroids: Matrix,
        offsets: Vec<usize>,
        member_idx: U32Storage,
        member_dist: F32Storage,
        prefix_subspaces: usize,
        prefix_dim: usize,
    ) -> Option<TiPartition> {
        if offsets.len() != centroids.rows() + 1 || offsets.first() != Some(&0) {
            return None;
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return None;
        }
        if offsets.last() != Some(&member_idx.len()) || member_idx.len() != member_dist.len() {
            return None;
        }
        Some(TiPartition {
            centroids,
            offsets,
            member_idx,
            member_dist,
            prefix_subspaces,
            prefix_dim,
        })
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total member count across all clusters.
    pub fn members_total(&self) -> usize {
        self.member_idx.len()
    }

    /// Subspaces spanned by the prefix metric.
    pub fn prefix_subspaces(&self) -> usize {
        self.prefix_subspaces
    }

    /// Dimensions spanned by the prefix metric.
    pub fn prefix_dim(&self) -> usize {
        self.prefix_dim
    }

    /// Element range of cluster `c` inside the flat member arrays (the
    /// prefetch granule for out-of-core scans).
    pub fn cluster_range(&self, c: usize) -> (usize, usize) {
        (self.offsets[c], self.offsets[c + 1])
    }

    /// Member count of cluster `c`.
    pub fn cluster_len(&self, c: usize) -> usize {
        self.offsets[c + 1] - self.offsets[c]
    }

    /// Row indices of cluster `c`, ordered by ascending centroid distance.
    pub fn cluster_idx(&self, c: usize) -> &[u32] {
        &self.member_idx.as_slice()[self.offsets[c]..self.offsets[c + 1]]
    }

    /// Centroid distances of cluster `c`, ascending, aligned with
    /// [`TiPartition::cluster_idx`].
    pub fn cluster_dist(&self, c: usize) -> &[f32] {
        &self.member_dist.as_slice()[self.offsets[c]..self.offsets[c + 1]]
    }

    /// Exact-membership coverage check: `true` iff every row index in
    /// `0..n` appears in exactly one cluster. O(n) time and one bit per
    /// row — unlike the cheap size-sum test, this catches a
    /// double-assigned row masking an omitted one.
    pub fn covers_exactly(&self, n: usize) -> bool {
        let mut seen = vec![false; n];
        let mut covered = 0usize;
        for &idx in self.member_idx.as_slice() {
            let Some(slot) = seen.get_mut(idx as usize) else {
                return false; // out-of-range index
            };
            if *slot {
                return false; // duplicate assignment
            }
            *slot = true;
            covered += 1;
        }
        covered == n
    }

    /// Inserts one newly encoded vector: assigns it to its nearest
    /// centroid and places it at the sorted position, preserving the
    /// ascending-distance invariant the binary-search pruning relies on.
    /// On a mapped partition this materializes owned member arrays
    /// (copy-on-write).
    pub fn insert(&mut self, encoder: &Encoder, code: &[u16], idx: u32) {
        let rec = encoder.decode_prefix(code, self.prefix_subspaces);
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (ci, crow) in self.centroids.iter_rows().enumerate() {
            let d = euclidean(crow, &rec);
            if d < best_d {
                best_d = d;
                best = ci;
            }
        }
        // Same comparator as the build-time sort: `total_cmp` then index.
        // A `<`/`==` mix here would disagree with that order (and stall at
        // position 0 on NaN), breaking the sorted invariant for every
        // later binary search.
        let (start, end) = (self.offsets[best], self.offsets[best + 1]);
        let dists = &self.member_dist.as_slice()[start..end];
        let idxs = &self.member_idx.as_slice()[start..end];
        let mut lo = 0usize;
        let mut hi = end - start;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let ord = dists[mid].total_cmp(&best_d).then_with(|| idxs[mid].cmp(&idx));
            if ord == std::cmp::Ordering::Less {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let pos = start + lo;
        self.member_idx.to_mut().insert(pos, idx);
        self.member_dist.to_mut().insert(pos, best_d);
        for o in self.offsets[best + 1..].iter_mut() {
            *o += 1;
        }
    }

    /// Unsquared distances from a projected query's prefix to every
    /// centroid.
    pub fn query_distances(&self, projected_query: &[f32]) -> Vec<f32> {
        let q = &projected_query[..self.prefix_dim];
        self.centroids.iter_rows().map(|c| euclidean(c, q)).collect()
    }

    /// Cluster visit order for a query: ascending centroid distance.
    pub fn visit_order(&self, query_dists: &[f32]) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.num_clusters() as u32).collect();
        order.sort_by(|&a, &b| query_dists[a as usize].total_cmp(&query_dists[b as usize]));
        order
    }

    /// The sub-range of a sorted cluster that the triangle inequality
    /// *cannot* prune for best-so-far `bsf`: members with
    /// `|d_qc − d_xc| < bsf`, i.e. `d_xc ∈ (d_qc − bsf, d_qc + bsf)`.
    pub fn survivor_window(&self, c: usize, d_qc: f32, bsf: f32) -> (usize, usize) {
        let dists = self.cluster_dist(c);
        if !bsf.is_finite() {
            return (0, dists.len());
        }
        let lo_bound = d_qc - bsf;
        let hi_bound = d_qc + bsf;
        let lo = dists.partition_point(|&d| d <= lo_bound);
        let hi = dists.partition_point(|&d| d < hi_bound);
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subspaces::{SubspaceLayout, SubspaceMode};

    fn setup(n: usize) -> (Matrix, Encoder, Vec<u16>) {
        let d = 8;
        let mut s = 11u64;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(d);
            for j in 0..d {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = ((s >> 40) as f32 / (1u32 << 23) as f32) - 1.0;
                row.push(v / (1.0 + j as f32));
            }
            rows.push(row);
        }
        let data = Matrix::from_rows(&rows);
        let vars: Vec<f64> = (0..d).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let layout = SubspaceLayout::build(&vars, 4, SubspaceMode::Uniform, false, 0).unwrap();
        let enc = Encoder::train(&data, &layout, &[4, 3, 2, 2], 10, 0).unwrap();
        let codes = enc.encode_all(&data);
        (data, enc, codes)
    }

    #[test]
    fn clusters_partition_all_rows() {
        let (_, enc, codes) = setup(500);
        let ti = TiPartition::build(&enc, &codes, 500, 16, 2, 1).unwrap();
        let total: usize = (0..ti.num_clusters()).map(|c| ti.cluster_len(c)).sum();
        assert_eq!(total, 500);
        assert_eq!(ti.members_total(), 500);
        // Every index appears exactly once.
        let mut seen = vec![false; 500];
        for c in 0..ti.num_clusters() {
            for &idx in ti.cluster_idx(c) {
                assert!(!seen[idx as usize], "row {idx} appears twice");
                seen[idx as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn members_sorted_ascending() {
        let (_, enc, codes) = setup(400);
        let ti = TiPartition::build(&enc, &codes, 400, 10, 2, 3).unwrap();
        for c in 0..ti.num_clusters() {
            for w in ti.cluster_dist(c).windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn insert_preserves_sorted_ascending_invariant() {
        // Regression: insert used a `<` / `==` comparator that disagreed
        // with the build-time `total_cmp` sort. Grow a partition one
        // vector at a time and re-check the invariant after every insert,
        // including the total-order tiebreak on equal distances.
        let (_, enc, codes) = setup(300);
        let mut ti = TiPartition::build(&enc, &codes[..200 * 4], 200, 8, 2, 5).unwrap();
        for i in 200..300 {
            let code = &codes[i * 4..(i + 1) * 4];
            ti.insert(&enc, code, i as u32);
            for c in 0..ti.num_clusters() {
                let (dists, idxs) = (ti.cluster_dist(c), ti.cluster_idx(c));
                for w in 0..dists.len().saturating_sub(1) {
                    let ord = dists[w].total_cmp(&dists[w + 1]).then(idxs[w].cmp(&idxs[w + 1]));
                    assert_ne!(
                        ord,
                        std::cmp::Ordering::Greater,
                        "after inserting {i}: cluster {c} out of order"
                    );
                }
            }
        }
        let total: usize = (0..ti.num_clusters()).map(|c| ti.cluster_len(c)).sum();
        assert_eq!(total, 300);
        assert_eq!(ti.members_total(), 300);
    }

    #[test]
    fn cached_distance_matches_recomputation() {
        let (_, enc, codes) = setup(300);
        let ti = TiPartition::build(&enc, &codes, 300, 8, 2, 5).unwrap();
        for c in 0..ti.num_clusters() {
            for (&idx, &dist) in ti.cluster_idx(c).iter().zip(ti.cluster_dist(c)).take(3) {
                let i = idx as usize;
                let code = &codes[i * 4..(i + 1) * 4];
                let rec = enc.decode_prefix(code, 2);
                // Distance to ITS centroid must be the minimum over all
                // centroids (assignment invariant).
                let dmin = ti
                    .centroids
                    .iter_rows()
                    .map(|crow| euclidean(crow, &rec))
                    .fold(f32::INFINITY, f32::min);
                assert!((dist - dmin).abs() < 1e-5, "cached {dist} vs recomputed {dmin}");
            }
        }
    }

    #[test]
    fn survivor_window_is_sound() {
        // Every member outside the window must satisfy |d_qc − d_xc| ≥ bsf.
        let (data, enc, codes) = setup(400);
        let ti = TiPartition::build(&enc, &codes, 400, 8, 2, 7).unwrap();
        let q = data.row(0);
        let qd = ti.query_distances(q);
        let bsf = 0.4f32;
        for c in 0..ti.num_clusters() {
            let (lo, hi) = ti.survivor_window(c, qd[c], bsf);
            for (pos, &dist) in ti.cluster_dist(c).iter().enumerate() {
                let bound = (qd[c] - dist).abs();
                if pos < lo || pos >= hi {
                    assert!(bound >= bsf - 1e-5, "pruned member violates TI: {bound} < {bsf}");
                }
            }
        }
    }

    #[test]
    fn infinite_bsf_keeps_everything() {
        let (data, enc, codes) = setup(200);
        let ti = TiPartition::build(&enc, &codes, 200, 5, 2, 9).unwrap();
        let qd = ti.query_distances(data.row(1));
        for c in 0..ti.num_clusters() {
            let (lo, hi) = ti.survivor_window(c, qd[c], f32::INFINITY);
            assert_eq!((lo, hi), (0, ti.cluster_len(c)));
        }
    }

    #[test]
    fn visit_order_sorts_by_query_distance() {
        let (data, enc, codes) = setup(300);
        let ti = TiPartition::build(&enc, &codes, 300, 12, 2, 11).unwrap();
        let qd = ti.query_distances(data.row(2));
        let order = ti.visit_order(&qd);
        for w in order.windows(2) {
            assert!(qd[w[0] as usize] <= qd[w[1] as usize]);
        }
        assert_eq!(order.len(), 12);
    }

    #[test]
    fn centroid_sampling_is_without_replacement() {
        // Regression: centroids were sampled with replacement, so on
        // small n duplicate picks produced identical centroids (and the
        // duplicates became permanently dead clusters). With c == n every
        // distinct row must appear exactly once as a centroid; a
        // with-replacement sampler passes this for one seed with
        // probability n!/n^n ≈ 5e-5 at n = 12, so six seeds cannot all
        // pass by luck.
        let n = 12;
        let (_, enc, codes) = setup(n);
        for seed in 0..6u64 {
            let ti = TiPartition::build(&enc, &codes, n, n, 2, seed).unwrap();
            let key = |row: &[f32]| row.iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
            let mut got: Vec<Vec<u32>> = ti.centroids.iter_rows().map(key).collect();
            let mut want: Vec<Vec<u32>> =
                (0..n).map(|i| key(&enc.decode_prefix(&codes[i * 4..(i + 1) * 4], 2))).collect();
            got.sort();
            want.sort();
            assert_eq!(got, want, "seed {seed}: centroid multiset != row multiset");
        }
    }

    #[test]
    fn covers_exactly_accepts_a_real_partition() {
        let (_, enc, codes) = setup(300);
        let ti = TiPartition::build(&enc, &codes, 300, 10, 2, 3).unwrap();
        assert!(ti.covers_exactly(300));
        assert!(!ti.covers_exactly(299), "over-coverage accepted");
        assert!(!ti.covers_exactly(301), "under-coverage accepted");
    }

    #[test]
    fn covers_exactly_catches_double_assignment_masking_an_omission() {
        // The size-sum check cannot see this corruption: remove one row
        // from a cluster and duplicate another member in its place, so
        // the total count still equals n.
        let (_, enc, codes) = setup(200);
        let mut ti = TiPartition::build(&enc, &codes, 200, 8, 2, 5).unwrap();
        let big = (0..ti.num_clusters()).max_by_key(|&c| ti.cluster_len(c)).unwrap();
        let (start, end) = ti.cluster_range(big);
        assert!(end - start >= 2, "need a cluster with two members to doctor");
        let dup = ti.member_idx.as_slice()[start];
        ti.member_idx.to_mut()[end - 1] = dup;
        let total: usize = (0..ti.num_clusters()).map(|c| ti.cluster_len(c)).sum();
        assert_eq!(total, 200, "doctoring must keep the size sum intact");
        assert!(!ti.covers_exactly(200), "double-assignment + omission went undetected");
    }

    #[test]
    fn cluster_count_clamped_to_n() {
        let (_, enc, codes) = setup(20);
        let ti = TiPartition::build(&enc, &codes, 20, 1000, 2, 13).unwrap();
        assert!(ti.num_clusters() <= 20);
    }

    #[test]
    fn prefix_clamped_to_subspace_count() {
        let (_, enc, codes) = setup(50);
        let ti = TiPartition::build(&enc, &codes, 50, 4, 99, 15).unwrap();
        assert_eq!(ti.prefix_subspaces(), 4);
        assert_eq!(ti.prefix_dim(), 8);
    }

    #[test]
    fn from_parts_rejects_inconsistent_boundaries() {
        let (_, enc, codes) = setup(60);
        let ti = TiPartition::build(&enc, &codes, 60, 6, 2, 17).unwrap();
        let ok = TiPartition::from_parts(
            ti.centroids.clone(),
            ti.offsets.clone(),
            ti.member_idx.clone(),
            ti.member_dist.clone(),
            ti.prefix_subspaces,
            ti.prefix_dim,
        );
        assert!(ok.is_some());
        let mut bad = ti.offsets.clone();
        bad[1] = bad[2] + 1; // non-monotone
        assert!(TiPartition::from_parts(
            ti.centroids.clone(),
            bad,
            ti.member_idx.clone(),
            ti.member_dist.clone(),
            ti.prefix_subspaces,
            ti.prefix_dim,
        )
        .is_none());
        let mut short = ti.offsets.clone();
        short.pop(); // boundary count != centroids + 1
        assert!(TiPartition::from_parts(
            ti.centroids.clone(),
            short,
            ti.member_idx.clone(),
            ti.member_dist.clone(),
            ti.prefix_subspaces,
            ti.prefix_dim,
        )
        .is_none());
    }

    #[test]
    fn bad_inputs_rejected() {
        let (_, enc, codes) = setup(50);
        assert!(TiPartition::build(&enc, &codes, 0, 4, 2, 0).is_err());
        assert!(TiPartition::build(&enc, &codes[..10], 50, 4, 2, 0).is_err());
    }
}
