//! Triangle-inequality partitioning of the encoded data (paper §III-D
//! "Enabling Data Skipping" and the second half of Algorithm 3).
//!
//! After encoding, VAQ clusters the encoded vectors around a set of
//! randomly sampled encoded vectors (their *reconstructions* over the first
//! few, most important subspaces serve as centroids), caches each code's
//! distance to its cluster centroid, and keeps each cluster sorted by that
//! distance. At query time the triangle inequality
//! `d(q, x) ≥ |d(q, c) − d(x, c)|` lets whole runs of each sorted cluster
//! be skipped with two binary searches (the paper's Figure 5 example).
//!
//! All distances here are *unsquared* Euclidean (the triangle inequality
//! needs a true metric) in the prefix space of the first
//! `prefix_subspaces` subspaces. A prefix of non-negative per-subspace
//! contributions lower-bounds the full ADC distance, so pruning against the
//! prefix is safe with respect to the approximate ranking.

use crate::encoder::Encoder;
use crate::VaqError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vaq_linalg::{euclidean, Matrix};

/// One encoded vector inside a TI cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Member {
    /// Database row index.
    pub idx: u32,
    /// Unsquared prefix-space distance to the cluster centroid.
    pub dist: f32,
}

/// The TI partition structure built once at encoding time.
#[derive(Debug, Clone)]
pub struct TiPartition {
    /// Cluster centroids in prefix space (one row per cluster).
    pub(crate) centroids: Matrix,
    /// Cluster members, each sorted ascending by `dist`.
    pub(crate) clusters: Vec<Vec<Member>>,
    /// Number of subspaces spanned by the prefix.
    pub(crate) prefix_subspaces: usize,
    /// Dimensionality of the prefix space.
    pub(crate) prefix_dim: usize,
}

impl TiPartition {
    /// Builds the partition from the encoded database.
    ///
    /// `codes` is the row-major `n × m` code array produced by
    /// [`Encoder::encode_all`]; `num_clusters` centroids are sampled from
    /// the encoded vectors themselves (paper: "VAQ randomly samples a few
    /// of them that form the cluster centroids").
    pub fn build(
        encoder: &Encoder,
        codes: &[u16],
        n: usize,
        num_clusters: usize,
        prefix_subspaces: usize,
        seed: u64,
    ) -> Result<TiPartition, VaqError> {
        if n == 0 {
            return Err(VaqError::EmptyData);
        }
        let m = encoder.num_subspaces();
        if codes.len() != n * m {
            return Err(VaqError::BadConfig(format!(
                "code array length {} does not match {n} × {m}",
                codes.len()
            )));
        }
        let prefix_subspaces = prefix_subspaces.clamp(1, m);
        let prefix_dim = encoder.ranges()[prefix_subspaces - 1].1;
        let c = num_clusters.clamp(1, n);

        // Sample centroid codes *without replacement* (partial
        // Fisher–Yates over the row ids) and reconstruct their prefixes.
        // Sampling with replacement would let duplicate picks produce
        // identical centroids, and since assignment ties break toward the
        // lower cluster id, every duplicate would be a permanently dead
        // cluster.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pool: Vec<u32> = (0..n as u32).collect();
        let mut centroids = Matrix::zeros(c, prefix_dim);
        for ci in 0..c {
            let j = ci + rng.gen_range(0..n - ci);
            pool.swap(ci, j);
            let pick = pool[ci] as usize;
            let code = &codes[pick * m..(pick + 1) * m];
            let rec = encoder.decode_prefix(code, prefix_subspaces);
            centroids.row_mut(ci).copy_from_slice(&rec);
        }

        // Assign every code to its nearest centroid (prefix space,
        // unsquared), parallel over rows.
        let mut assign: Vec<(u32, f32)> = vec![(0, 0.0); n];
        let workers = crate::threads::worker_count(n);
        let chunk = n.div_ceil(workers);
        crate::sync::thread::scope(|scope| {
            let mut rest: &mut [(u32, f32)] = &mut assign;
            let centroids = &centroids;
            for w in 0..workers {
                let start = w * chunk;
                if start >= n {
                    break;
                }
                let len = chunk.min(n - start);
                let (mine, tail) = rest.split_at_mut(len);
                rest = tail;
                scope.spawn(move || {
                    for (j, slot) in mine.iter_mut().enumerate() {
                        let i = start + j;
                        let code = &codes[i * m..(i + 1) * m];
                        let rec = encoder.decode_prefix(code, prefix_subspaces);
                        let mut best = 0u32;
                        let mut best_d = f32::INFINITY;
                        for (ci, crow) in centroids.iter_rows().enumerate() {
                            let d = euclidean(crow, &rec);
                            if d < best_d {
                                best_d = d;
                                best = ci as u32;
                            }
                        }
                        *slot = (best, best_d);
                    }
                });
            }
        });

        let mut clusters: Vec<Vec<Member>> = vec![Vec::new(); c];
        for (i, &(ci, d)) in assign.iter().enumerate() {
            clusters[ci as usize].push(Member { idx: i as u32, dist: d });
        }
        for cl in clusters.iter_mut() {
            cl.sort_by(|a, b| a.dist.total_cmp(&b.dist).then_with(|| a.idx.cmp(&b.idx)));
        }
        Ok(TiPartition { centroids, clusters, prefix_subspaces, prefix_dim })
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Subspaces spanned by the prefix metric.
    pub fn prefix_subspaces(&self) -> usize {
        self.prefix_subspaces
    }

    /// Dimensions spanned by the prefix metric.
    pub fn prefix_dim(&self) -> usize {
        self.prefix_dim
    }

    /// Members of cluster `c`, sorted ascending by centroid distance.
    pub fn cluster(&self, c: usize) -> &[Member] {
        &self.clusters[c]
    }

    /// Exact-membership coverage check: `true` iff every row index in
    /// `0..n` appears in exactly one cluster. O(n) time and one bit per
    /// row — unlike the cheap size-sum test, this catches a
    /// double-assigned row masking an omitted one.
    pub fn covers_exactly(&self, n: usize) -> bool {
        let mut seen = vec![false; n];
        let mut covered = 0usize;
        for cluster in &self.clusters {
            for m in cluster {
                let Some(slot) = seen.get_mut(m.idx as usize) else {
                    return false; // out-of-range index
                };
                if *slot {
                    return false; // duplicate assignment
                }
                *slot = true;
                covered += 1;
            }
        }
        covered == n
    }

    /// Inserts one newly encoded vector: assigns it to its nearest
    /// centroid and places it at the sorted position, preserving the
    /// ascending-distance invariant the binary-search pruning relies on.
    pub fn insert(&mut self, encoder: &Encoder, code: &[u16], idx: u32) {
        let rec = encoder.decode_prefix(code, self.prefix_subspaces);
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (ci, crow) in self.centroids.iter_rows().enumerate() {
            let d = euclidean(crow, &rec);
            if d < best_d {
                best_d = d;
                best = ci;
            }
        }
        let cluster = &mut self.clusters[best];
        // Same comparator as the build-time sort: `total_cmp` then index.
        // A `<`/`==` mix here would disagree with that order (and stall at
        // position 0 on NaN), breaking the sorted invariant for every
        // later binary search.
        let pos = cluster.partition_point(|m| {
            m.dist.total_cmp(&best_d).then_with(|| m.idx.cmp(&idx)) == std::cmp::Ordering::Less
        });
        cluster.insert(pos, Member { idx, dist: best_d });
    }

    /// Unsquared distances from a projected query's prefix to every
    /// centroid.
    pub fn query_distances(&self, projected_query: &[f32]) -> Vec<f32> {
        let q = &projected_query[..self.prefix_dim];
        self.centroids.iter_rows().map(|c| euclidean(c, q)).collect()
    }

    /// Cluster visit order for a query: ascending centroid distance.
    pub fn visit_order(&self, query_dists: &[f32]) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.clusters.len() as u32).collect();
        order.sort_by(|&a, &b| query_dists[a as usize].total_cmp(&query_dists[b as usize]));
        order
    }

    /// The sub-range of a sorted cluster that the triangle inequality
    /// *cannot* prune for best-so-far `bsf`: members with
    /// `|d_qc − d_xc| < bsf`, i.e. `d_xc ∈ (d_qc − bsf, d_qc + bsf)`.
    pub fn survivor_window(&self, c: usize, d_qc: f32, bsf: f32) -> (usize, usize) {
        let members = &self.clusters[c];
        if !bsf.is_finite() {
            return (0, members.len());
        }
        let lo_bound = d_qc - bsf;
        let hi_bound = d_qc + bsf;
        let lo = members.partition_point(|m| m.dist <= lo_bound);
        let hi = members.partition_point(|m| m.dist < hi_bound);
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subspaces::{SubspaceLayout, SubspaceMode};

    fn setup(n: usize) -> (Matrix, Encoder, Vec<u16>) {
        let d = 8;
        let mut s = 11u64;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(d);
            for j in 0..d {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = ((s >> 40) as f32 / (1u32 << 23) as f32) - 1.0;
                row.push(v / (1.0 + j as f32));
            }
            rows.push(row);
        }
        let data = Matrix::from_rows(&rows);
        let vars: Vec<f64> = (0..d).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let layout = SubspaceLayout::build(&vars, 4, SubspaceMode::Uniform, false, 0).unwrap();
        let enc = Encoder::train(&data, &layout, &[4, 3, 2, 2], 10, 0).unwrap();
        let codes = enc.encode_all(&data);
        (data, enc, codes)
    }

    #[test]
    fn clusters_partition_all_rows() {
        let (_, enc, codes) = setup(500);
        let ti = TiPartition::build(&enc, &codes, 500, 16, 2, 1).unwrap();
        let total: usize = (0..ti.num_clusters()).map(|c| ti.cluster(c).len()).sum();
        assert_eq!(total, 500);
        // Every index appears exactly once.
        let mut seen = vec![false; 500];
        for c in 0..ti.num_clusters() {
            for m in ti.cluster(c) {
                assert!(!seen[m.idx as usize], "row {} appears twice", m.idx);
                seen[m.idx as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn members_sorted_ascending() {
        let (_, enc, codes) = setup(400);
        let ti = TiPartition::build(&enc, &codes, 400, 10, 2, 3).unwrap();
        for c in 0..ti.num_clusters() {
            for w in ti.cluster(c).windows(2) {
                assert!(w[0].dist <= w[1].dist);
            }
        }
    }

    #[test]
    fn insert_preserves_sorted_ascending_invariant() {
        // Regression: insert used a `<` / `==` comparator that disagreed
        // with the build-time `total_cmp` sort. Grow a partition one
        // vector at a time and re-check the invariant after every insert,
        // including the total-order tiebreak on equal distances.
        let (_, enc, codes) = setup(300);
        let mut ti = TiPartition::build(&enc, &codes[..200 * 4], 200, 8, 2, 5).unwrap();
        for i in 200..300 {
            let code = &codes[i * 4..(i + 1) * 4];
            ti.insert(&enc, code, i as u32);
            for c in 0..ti.num_clusters() {
                for w in ti.cluster(c).windows(2) {
                    let ord = w[0].dist.total_cmp(&w[1].dist).then(w[0].idx.cmp(&w[1].idx));
                    assert_ne!(
                        ord,
                        std::cmp::Ordering::Greater,
                        "after inserting {i}: cluster {c} out of order"
                    );
                }
            }
        }
        let total: usize = (0..ti.num_clusters()).map(|c| ti.cluster(c).len()).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn cached_distance_matches_recomputation() {
        let (_, enc, codes) = setup(300);
        let ti = TiPartition::build(&enc, &codes, 300, 8, 2, 5).unwrap();
        for c in 0..ti.num_clusters() {
            for m in ti.cluster(c).iter().take(3) {
                let i = m.idx as usize;
                let code = &codes[i * 4..(i + 1) * 4];
                let rec = enc.decode_prefix(code, 2);
                // Distance to ITS centroid must be the minimum over all
                // centroids (assignment invariant).
                let dmin = ti
                    .centroids
                    .iter_rows()
                    .map(|crow| euclidean(crow, &rec))
                    .fold(f32::INFINITY, f32::min);
                assert!((m.dist - dmin).abs() < 1e-5, "cached {} vs recomputed {dmin}", m.dist);
            }
        }
    }

    #[test]
    fn survivor_window_is_sound() {
        // Every member outside the window must satisfy |d_qc − d_xc| ≥ bsf.
        let (data, enc, codes) = setup(400);
        let ti = TiPartition::build(&enc, &codes, 400, 8, 2, 7).unwrap();
        let q = data.row(0);
        let qd = ti.query_distances(q);
        let bsf = 0.4f32;
        for c in 0..ti.num_clusters() {
            let (lo, hi) = ti.survivor_window(c, qd[c], bsf);
            let members = ti.cluster(c);
            for (pos, m) in members.iter().enumerate() {
                let bound = (qd[c] - m.dist).abs();
                if pos < lo || pos >= hi {
                    assert!(bound >= bsf - 1e-5, "pruned member violates TI: {bound} < {bsf}");
                }
            }
        }
    }

    #[test]
    fn infinite_bsf_keeps_everything() {
        let (data, enc, codes) = setup(200);
        let ti = TiPartition::build(&enc, &codes, 200, 5, 2, 9).unwrap();
        let qd = ti.query_distances(data.row(1));
        for c in 0..ti.num_clusters() {
            let (lo, hi) = ti.survivor_window(c, qd[c], f32::INFINITY);
            assert_eq!((lo, hi), (0, ti.cluster(c).len()));
        }
    }

    #[test]
    fn visit_order_sorts_by_query_distance() {
        let (data, enc, codes) = setup(300);
        let ti = TiPartition::build(&enc, &codes, 300, 12, 2, 11).unwrap();
        let qd = ti.query_distances(data.row(2));
        let order = ti.visit_order(&qd);
        for w in order.windows(2) {
            assert!(qd[w[0] as usize] <= qd[w[1] as usize]);
        }
        assert_eq!(order.len(), 12);
    }

    #[test]
    fn centroid_sampling_is_without_replacement() {
        // Regression: centroids were sampled with replacement, so on
        // small n duplicate picks produced identical centroids (and the
        // duplicates became permanently dead clusters). With c == n every
        // distinct row must appear exactly once as a centroid; a
        // with-replacement sampler passes this for one seed with
        // probability n!/n^n ≈ 5e-5 at n = 12, so six seeds cannot all
        // pass by luck.
        let n = 12;
        let (_, enc, codes) = setup(n);
        for seed in 0..6u64 {
            let ti = TiPartition::build(&enc, &codes, n, n, 2, seed).unwrap();
            let key = |row: &[f32]| row.iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
            let mut got: Vec<Vec<u32>> = ti.centroids.iter_rows().map(key).collect();
            let mut want: Vec<Vec<u32>> =
                (0..n).map(|i| key(&enc.decode_prefix(&codes[i * 4..(i + 1) * 4], 2))).collect();
            got.sort();
            want.sort();
            assert_eq!(got, want, "seed {seed}: centroid multiset != row multiset");
        }
    }

    #[test]
    fn covers_exactly_accepts_a_real_partition() {
        let (_, enc, codes) = setup(300);
        let ti = TiPartition::build(&enc, &codes, 300, 10, 2, 3).unwrap();
        assert!(ti.covers_exactly(300));
        assert!(!ti.covers_exactly(299), "over-coverage accepted");
        assert!(!ti.covers_exactly(301), "under-coverage accepted");
    }

    #[test]
    fn covers_exactly_catches_double_assignment_masking_an_omission() {
        // The size-sum check cannot see this corruption: remove one row
        // from a cluster and duplicate another member in its place, so
        // the total count still equals n.
        let (_, enc, codes) = setup(200);
        let mut ti = TiPartition::build(&enc, &codes, 200, 8, 2, 5).unwrap();
        let big = (0..ti.num_clusters()).max_by_key(|&c| ti.cluster(c).len()).unwrap();
        let dup = ti.clusters[big][0];
        let len = ti.clusters[big].len();
        assert!(len >= 2, "need a cluster with two members to doctor");
        ti.clusters[big][len - 1] = dup;
        let total: usize = (0..ti.num_clusters()).map(|c| ti.cluster(c).len()).sum();
        assert_eq!(total, 200, "doctoring must keep the size sum intact");
        assert!(!ti.covers_exactly(200), "double-assignment + omission went undetected");
    }

    #[test]
    fn cluster_count_clamped_to_n() {
        let (_, enc, codes) = setup(20);
        let ti = TiPartition::build(&enc, &codes, 20, 1000, 2, 13).unwrap();
        assert!(ti.num_clusters() <= 20);
    }

    #[test]
    fn prefix_clamped_to_subspace_count() {
        let (_, enc, codes) = setup(50);
        let ti = TiPartition::build(&enc, &codes, 50, 4, 99, 15).unwrap();
        assert_eq!(ti.prefix_subspaces(), 4);
        assert_eq!(ti.prefix_dim(), 8);
    }

    #[test]
    fn bad_inputs_rejected() {
        let (_, enc, codes) = setup(50);
        assert!(TiPartition::build(&enc, &codes, 0, 4, 2, 0).is_err());
        assert!(TiPartition::build(&enc, &codes[..10], 50, 4, 2, 0).is_err());
    }
}
