//! Segmented concurrent index: sealed segments, a mutable write buffer,
//! tombstoned deletes, and background compaction (ROADMAP open item 1 —
//! the serving-scale regime).
//!
//! A [`SegmentedVaq`] shares **one trained model** (PCA basis, subspace
//! plan, bit plan, dictionaries — everything [`Vaq::train`] learns) across
//! an LSM-like collection of data holders:
//!
//! * a bounded mutable **write buffer** of plain codes, scanned exactly
//!   (early-abandon, no TI, no packing) so freshly ingested vectors are
//!   searchable immediately;
//! * a list of immutable **sealed segments**, each owning its own
//!   [`PackedCodes`] blocked layout and [`TiPartition`], searched through
//!   the same pruned paths a monolithic [`Vaq`] uses.
//!
//! # Snapshot semantics — no locks on the query path
//!
//! All index state lives in a fully immutable [`SegmentSet`] behind an
//! `Arc`. Writers (add / delete / seal / compact) build a *new* set and
//! swap the `Arc` while holding a writer mutex; readers either clone the
//! current `Arc` (one brief `RwLock` read) or — via [`SegmentSearcher`] —
//! cache the clone and re-validate it with a single atomic version load
//! per query, so the steady-state query path takes **no lock at all**.
//! Every operation observes one coherent snapshot; a query never sees a
//! half-applied write.
//!
//! # Lifecycle
//!
//! ```text
//!   add ──▶ write buffer ──(≥ seal_threshold, background thread)──▶ seal
//!                                                                    │
//!            sealed segment ◀── pack codes + build per-segment TI ◀──┘
//!                 │
//!                 ├─ delete ──▶ tombstone bit (consulted at scan & rerank)
//!                 │
//!                 └─(small segments / dead_frac ≥ purge threshold)──▶
//!                        compaction: merge neighbours, drop tombstones
//! ```
//!
//! Sealing and compaction run on a background thread when the
//! [`crate::threads`] budget allows (and [`SegmentPolicy::background`] is
//! set); otherwise they run inline at the trigger point. A failed seal
//! (fault site `segment.seal`) keeps the buffer queryable and retries on a
//! later trigger; a failed compaction (`segment.compact`) keeps its input
//! segments. All three maintenance actions emit structured events
//! (`segment.seal` / `segment.compact` / `segment.tombstone_purge`) into
//! the [`crate::obs`] event ring under span coverage.
//!
//! ```
//! use vaq_core::{SegmentPolicy, SegmentedVaq, VaqConfig};
//! use vaq_linalg::Matrix;
//!
//! let rows: Vec<Vec<f32>> = (0..96)
//!     .map(|i| (0..6).map(|j| ((i * 5 + j) % 17) as f32 * 0.1).collect())
//!     .collect();
//! let data = Matrix::from_rows(&rows);
//! let cfg = VaqConfig::new(12, 3).with_ti_clusters(8);
//! let policy = SegmentPolicy::default().with_seal_threshold(32).sequential();
//! let index = SegmentedVaq::train(&data, &cfg, policy).unwrap();
//! let ids = index.add(&Matrix::from_rows(&rows[..4])).unwrap();
//! assert!(index.delete(ids[0]));
//! let hits = index.search(&rows[1], 5).unwrap();
//! assert_eq!(hits.len(), 5);
//! ```

use crate::encoder::Encoder;
use crate::engine::{IndexView, QueryEngine};
use crate::search::{Neighbor, SearchStats, SearchStrategy};
use crate::subspaces::SubspaceLayout;
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{thread, Arc, Mutex, MutexGuard, RwLock};
use crate::ti::TiPartition;
use crate::vaq::{Vaq, VaqConfig};
use crate::VaqError;
use std::path::Path;
use vaq_linalg::{Matrix, PackedCodes, Pca, ScanPrefetch, U16Storage, U32Storage, U64Storage};

pub(crate) mod wal;

// ---------------------------------------------------------------------------
// Policy
// ---------------------------------------------------------------------------

/// Tuning knobs for segment maintenance. All thresholds are clamped to
/// sane minima by the builders.
#[derive(Debug, Clone)]
pub struct SegmentPolicy {
    /// Buffer size (rows) that triggers sealing into a new segment.
    pub seal_threshold: usize,
    /// Sealed-segment count that triggers merging the smallest adjacent
    /// pair. Minimum 2.
    pub compact_min_segments: usize,
    /// Dead fraction of a sealed segment that triggers a tombstone purge
    /// rewrite, in `(0, 1]`.
    pub tombstone_purge_frac: f64,
    /// TI clusters per sealed segment (clamped to the segment size;
    /// `0` disables per-segment TI and the segment scans exactly).
    pub ti_clusters: usize,
    /// Run seal/compaction on a background thread when the
    /// [`crate::threads`] budget allows. When `false` (or with a budget
    /// of 1) maintenance runs inline at the trigger point —
    /// deterministic, useful for tests.
    pub background: bool,
}

impl Default for SegmentPolicy {
    fn default() -> Self {
        SegmentPolicy {
            seal_threshold: 1024,
            compact_min_segments: 4,
            tombstone_purge_frac: 0.25,
            ti_clusters: 64,
            background: true,
        }
    }
}

impl SegmentPolicy {
    /// Overrides the buffer-size seal trigger (min 1).
    pub fn with_seal_threshold(mut self, rows: usize) -> Self {
        self.seal_threshold = rows.max(1);
        self
    }

    /// Overrides the segment-count compaction trigger (min 2).
    pub fn with_compact_min_segments(mut self, count: usize) -> Self {
        self.compact_min_segments = count.max(2);
        self
    }

    /// Overrides the tombstone-purge dead fraction (clamped to `(0, 1]`).
    pub fn with_tombstone_purge_frac(mut self, frac: f64) -> Self {
        self.tombstone_purge_frac =
            if frac.is_finite() { frac.clamp(f64::EPSILON, 1.0) } else { 1.0 };
        self
    }

    /// Overrides the per-segment TI cluster count (0 disables).
    pub fn with_ti_clusters(mut self, clusters: usize) -> Self {
        self.ti_clusters = clusters;
        self
    }

    /// Forces inline (same-thread) seal/compaction: deterministic, no
    /// background thread.
    pub fn sequential(mut self) -> Self {
        self.background = false;
        self
    }

    /// Hard cap on the buffer before writers block on the in-flight seal
    /// (backpressure): twice the seal threshold.
    fn backpressure_rows(&self) -> usize {
        self.seal_threshold.saturating_mul(2).max(2)
    }
}

// ---------------------------------------------------------------------------
// Immutable building blocks
// ---------------------------------------------------------------------------

/// The trained model every segment shares: projection, layout, bit plan,
/// dictionaries, and query defaults. Never mutated after construction.
#[derive(Debug)]
pub(crate) struct Model {
    pub(crate) pca: Pca,
    pub(crate) layout: SubspaceLayout,
    pub(crate) bits: Vec<usize>,
    pub(crate) encoder: Encoder,
    pub(crate) default_strategy: SearchStrategy,
    /// Prefix subspaces for per-segment TI builds.
    pub(crate) ti_prefix_subspaces: usize,
    /// Base RNG seed for per-segment TI sampling (xor-ed with the
    /// segment's first id, so rebuilds are deterministic per segment).
    pub(crate) seed: u64,
}

/// Tombstone bitmap over a segment's local rows plus a live-count cache.
/// Cloned (O(n/64) words, or an `Arc` bump while mapped) whenever a
/// delete produces a new snapshot. A mapped index borrows the words from
/// the file; the first `kill` materializes an owned copy (copy-on-write).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Tombstones {
    words: U64Storage,
    dead: usize,
}

impl Tombstones {
    pub(crate) fn with_len(n: usize) -> Tombstones {
        Tombstones { words: vec![0u64; n.div_ceil(64)].into(), dead: 0 }
    }

    pub(crate) fn is_dead(&self, i: usize) -> bool {
        self.words.get(i / 64).is_some_and(|w| (w >> (i % 64)) & 1 == 1)
    }

    /// Marks row `i` dead; `true` when the bit was newly set.
    pub(crate) fn kill(&mut self, i: usize) -> bool {
        if self.words.get(i / 64).is_none_or(|w| (w >> (i % 64)) & 1 != 0) {
            return false;
        }
        self.words.to_mut()[i / 64] |= 1u64 << (i % 64);
        self.dead += 1;
        true
    }

    pub(crate) fn dead(&self) -> usize {
        self.dead
    }

    /// Rebuilds a bitmap from persisted parts. The caller (the loader)
    /// checks the sizing; the popcount/tail invariants are re-verified by
    /// the audit that runs after every load.
    pub(crate) fn from_raw(words: Vec<u64>, dead: usize) -> Tombstones {
        Tombstones { words: words.into(), dead }
    }

    /// Like [`Tombstones::from_raw`], but over any storage — the mapped
    /// loader hands the bitmap a window of the file (it verified the
    /// extent eagerly: deletes mutate the bitmap, so it cannot be lazy).
    pub(crate) fn from_storage(words: U64Storage, dead: usize) -> Tombstones {
        Tombstones { words, dead }
    }

    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// The bitmap's mapped span, for the VAQ113 bounds/alignment audit
    /// (`None` once a delete has copied it out, or when owned all along).
    pub(crate) fn mapped_span(&self) -> Option<vaq_linalg::MappedSpan> {
        self.words.mapped_span()
    }

    /// The bitmap for [`IndexView::with_dead`]; `None` while nothing is
    /// dead so fully live segments skip the per-row check entirely.
    fn filter(&self) -> Option<&[u64]> {
        (self.dead > 0).then_some(self.words.as_slice())
    }
}

/// The immutable payload of a sealed segment: codes, global ids, the
/// blocked packing, and the per-segment TI partition. Shared by `Arc`
/// across snapshots; only the tombstone bitmap beside it ever changes.
/// The arrays are [`U32Storage`]/[`U16Storage`] so an out-of-core index
/// can borrow them from a mapped `VAQ4` file instead of copying.
#[derive(Debug)]
pub(crate) struct SegmentCore {
    /// Global ids, strictly ascending; `ids[local] = global`.
    pub(crate) ids: U32Storage,
    /// Row-major `n × m` codes.
    pub(crate) codes: U16Storage,
    pub(crate) n: usize,
    pub(crate) packed: PackedCodes,
    pub(crate) ti: Option<TiPartition>,
    /// Deferred CRC + content verification for a mapped segment's
    /// scan-path extents, plus its prefetch hints. `None` for owned
    /// segments, which are verified eagerly at parse time.
    pub(crate) lazy: Option<crate::persist::LazyExtents>,
}

impl SegmentCore {
    /// Verifies a mapped segment's lazily-checked extents (checksums and
    /// the content invariants the scan paths rely on) exactly once, on
    /// first search touch. `needs_packed` says the caller will read the
    /// packed-codes extent (quantized scans) — leaving it unverified
    /// otherwise keeps those pages non-resident. Owned segments return
    /// `Ok` immediately.
    pub(crate) fn ensure_verified(&self, needs_packed: bool) -> Result<(), VaqError> {
        match &self.lazy {
            None => Ok(()),
            Some(lazy) => lazy.verify_once(self, needs_packed),
        }
    }

    /// Prefetch hints for a mapped segment (`None` when owned: advising
    /// anonymous memory is pointless).
    pub(crate) fn prefetch(&self) -> Option<&ScanPrefetch> {
        self.lazy.as_ref().map(crate::persist::LazyExtents::prefetch)
    }
}

/// One sealed segment inside a snapshot: the shared immutable core plus
/// this snapshot's tombstone bitmap.
#[derive(Debug, Clone)]
pub(crate) struct Segment {
    pub(crate) core: Arc<SegmentCore>,
    pub(crate) tombstones: Tombstones,
}

impl Segment {
    fn live(&self) -> usize {
        self.core.n - self.tombstones.dead()
    }

    fn dead_frac(&self) -> f64 {
        if self.core.n == 0 {
            0.0
        } else {
            self.tombstones.dead() as f64 / self.core.n as f64
        }
    }

    /// Local row of a global id, if this segment holds it.
    fn local_of(&self, id: u32) -> Option<usize> {
        self.core.ids.binary_search(&id).ok()
    }
}

/// The mutable-by-replacement write buffer: plain codes scanned exactly.
#[derive(Debug, Clone, Default)]
pub(crate) struct Buffer {
    /// Global ids, strictly ascending (appends always take fresh ids).
    pub(crate) ids: Vec<u32>,
    /// Row-major `len × m` codes.
    pub(crate) codes: Vec<u16>,
    pub(crate) tombstones: Tombstones,
}

impl Buffer {
    fn rows(&self) -> usize {
        self.ids.len()
    }

    fn live(&self) -> usize {
        self.ids.len() - self.tombstones.dead()
    }
}

/// One immutable snapshot of the whole index: sealed segments (sorted by
/// first id, id ranges pairwise disjoint) plus the write buffer. Readers
/// hold an `Arc<SegmentSet>`; writers install a new one atomically.
#[derive(Debug, Clone)]
pub struct SegmentSet {
    pub(crate) segments: Vec<Segment>,
    pub(crate) buffer: Arc<Buffer>,
}

impl SegmentSet {
    /// Live (non-tombstoned) rows across segments and buffer.
    pub fn live_len(&self) -> usize {
        self.segments.iter().map(Segment::live).sum::<usize>() + self.buffer.live()
    }

    /// Sealed segment count.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Rows currently in the write buffer (including tombstoned ones).
    pub fn buffer_len(&self) -> usize {
        self.buffer.rows()
    }
}

// ---------------------------------------------------------------------------
// Shared state + the public handle
// ---------------------------------------------------------------------------

/// Serialized writer state. Every mutation (add/delete/install) happens
/// under this mutex; the query path never touches it.
#[derive(Debug, Default)]
pub(crate) struct WriterState {
    pub(crate) next_id: u32,
    /// A seal/compaction pass is running (background or inline); at most
    /// one at a time.
    maintenance: bool,
    /// Join handle of the in-flight background pass, for backpressure
    /// and [`SegmentedVaq::flush`].
    inflight: Option<thread::JoinHandle<()>>,
}

#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) model: Arc<Model>,
    pub(crate) policy: SegmentPolicy,
    /// Bumped (release) after every snapshot install; searchers
    /// re-validate their cached snapshot against it with one atomic load.
    version: AtomicU64,
    current: RwLock<Arc<SegmentSet>>,
    pub(crate) writer: Mutex<WriterState>,
    /// The write-ahead log, when the index is durable (attached by
    /// [`SegmentedVaq::make_durable`] / [`SegmentedVaq::open_durable`]).
    /// Lock order: `writer` before `journal`, always — appends happen
    /// under the writer lock so WAL order equals apply order.
    journal: Mutex<Option<wal::Journal>>,
}

/// Poison-tolerant lock helpers: index state must stay reachable even if
/// a panicking holder poisoned a lock (the data is a plain snapshot).
fn wlock(shared: &Shared) -> MutexGuard<'_, WriterState> {
    shared.writer.lock().unwrap_or_else(|e| e.into_inner())
}

fn read_current(shared: &Shared) -> Arc<SegmentSet> {
    shared.current.read().unwrap_or_else(|e| e.into_inner()).clone()
}

fn jlock(shared: &Shared) -> MutexGuard<'_, Option<wal::Journal>> {
    shared.journal.lock().unwrap_or_else(|e| e.into_inner())
}

/// Appends one record to the journal, when one is attached. The caller
/// must hold the writer lock (lock order: writer → journal) and must NOT
/// have applied the mutation yet — write-ahead means an append failure
/// leaves both the log and the in-memory state at the committed prefix.
fn journal_append(shared: &Shared, op: &wal::WalOp) -> Result<(), VaqError> {
    let mut j = jlock(shared);
    if let Some(j) = j.as_mut() {
        j.append(op)?;
    }
    Ok(())
}

/// Best-effort advisory marker (seal/compact commit points): a failed
/// append is recorded as a degradation, never an error — markers carry no
/// state replay depends on.
fn journal_note(shared: &Shared, op: &wal::WalOp) {
    let mut j = jlock(shared);
    if let Some(j) = j.as_mut() {
        if j.append(op).is_err() {
            crate::faults::note_degradation("segment.wal: advisory marker append failed");
        }
    }
}

/// Installs a new snapshot. Callers mutating index *state* must hold the
/// writer mutex around decide→install so snapshots are totally ordered.
fn install(shared: &Shared, set: SegmentSet) {
    let mut cur = shared.current.write().unwrap_or_else(|e| e.into_inner());
    *cur = Arc::new(set);
    drop(cur);
    // ORDERING: Release pairs with the Acquire loads in `searcher` and
    // `SegmentSearcher::refresh`: a reader that observes the bumped
    // version must also observe the RwLock write above that installed
    // the snapshot it is about to re-read. (The swap itself is already
    // ordered by the RwLock; the version is the cheap change signal.)
    shared.version.fetch_add(1, Ordering::Release);
}

/// An LSM-like VAQ index supporting concurrent ingest, deletes, and
/// lock-free snapshot queries. Cheap to clone — clones share all state.
///
/// See the [module docs](self) for the architecture.
#[derive(Debug, Clone)]
pub struct SegmentedVaq {
    shared: Arc<Shared>,
}

impl SegmentedVaq {
    /// Trains a model on `data` (exactly [`Vaq::train`]) and starts the
    /// segmented index with the training set as its first sealed segment.
    pub fn train(
        data: &Matrix,
        cfg: &VaqConfig,
        policy: SegmentPolicy,
    ) -> Result<SegmentedVaq, VaqError> {
        let vaq = Vaq::train(data, cfg)?;
        let mut this = SegmentedVaq::from_vaq(vaq, policy);
        // `from_vaq` cannot see the config; thread the seed through for
        // deterministic per-segment TI sampling.
        if let Some(shared) = Arc::get_mut(&mut this.shared) {
            if let Some(model) = Arc::get_mut(&mut shared.model) {
                model.seed = cfg.seed;
            }
        }
        Ok(this)
    }

    /// Wraps an already-trained [`Vaq`] as a segmented index whose entire
    /// database becomes sealed segment 0 (ids `0..n`), keeping the
    /// original TI partition and blocked packing — searches return
    /// exactly what the monolithic index returned.
    pub fn from_vaq(vaq: Vaq, policy: SegmentPolicy) -> SegmentedVaq {
        let Vaq { pca, layout, bits, encoder, codes, n, ti, default_strategy, packed } = vaq;
        let ti_prefix_subspaces = ti
            .as_ref()
            .map(|t| t.prefix_subspaces())
            .unwrap_or(8)
            .clamp(1, encoder.num_subspaces());
        let model = Arc::new(Model {
            pca,
            layout,
            bits,
            encoder,
            default_strategy,
            ti_prefix_subspaces,
            seed: 0x5eed,
        });
        let segments = if n > 0 {
            let ids: Vec<u32> = (0..n as u32).collect();
            let core =
                SegmentCore { ids: ids.into(), codes: codes.into(), n, packed, ti, lazy: None };
            vec![Segment { core: Arc::new(core), tombstones: Tombstones::with_len(n) }]
        } else {
            Vec::new()
        };
        let set = SegmentSet { segments, buffer: Arc::new(Buffer::default()) };
        SegmentedVaq {
            shared: Arc::new(Shared {
                model,
                policy,
                version: AtomicU64::new(0),
                current: RwLock::new(Arc::new(set)),
                writer: Mutex::new(WriterState { next_id: n as u32, ..WriterState::default() }),
                journal: Mutex::new(None),
            }),
        }
    }

    /// Reconstructs from persisted parts (see `crate::persist`).
    pub(crate) fn from_parts(
        model: Model,
        policy: SegmentPolicy,
        segments: Vec<Segment>,
        buffer: Buffer,
        next_id: u32,
    ) -> SegmentedVaq {
        let set = SegmentSet { segments, buffer: Arc::new(buffer) };
        SegmentedVaq {
            shared: Arc::new(Shared {
                model: Arc::new(model),
                policy,
                version: AtomicU64::new(0),
                current: RwLock::new(Arc::new(set)),
                writer: Mutex::new(WriterState { next_id, ..WriterState::default() }),
                journal: Mutex::new(None),
            }),
        }
    }

    /// The maintenance policy.
    pub fn policy(&self) -> &SegmentPolicy {
        &self.shared.policy
    }

    /// The current snapshot (cheap: one `RwLock` read + `Arc` clone).
    pub fn snapshot(&self) -> Arc<SegmentSet> {
        read_current(&self.shared)
    }

    pub(crate) fn shared_model(&self) -> &Model {
        &self.shared.model
    }

    /// Writer-state probe for the audit: `(next_id, maintenance pass in
    /// flight)`, read atomically under the writer lock.
    pub(crate) fn writer_probe(&self) -> (u32, bool) {
        let st = wlock(&self.shared);
        (st.next_id, st.maintenance)
    }

    /// A mutually consistent `(snapshot, next_id)` pair for serialization,
    /// read under the writer lock so no add can slip between the two.
    pub(crate) fn persist_snapshot(&self) -> (Arc<SegmentSet>, u32) {
        let st = wlock(&self.shared);
        (read_current(&self.shared), st.next_id)
    }

    /// Restores the VAQ111 quiescence invariant after a load: an index
    /// serialized mid-ingest can carry a buffer at or above the seal
    /// threshold, which a live index only exhibits while a maintenance
    /// pass is in flight. Seal it down synchronously.
    pub(crate) fn normalize_after_load(&self) {
        let claimed = {
            let mut st = wlock(&self.shared);
            let pending = !st.maintenance
                && read_current(&self.shared).buffer.rows() >= self.shared.policy.seal_threshold;
            if pending {
                st.maintenance = true;
            }
            pending
        };
        if claimed {
            maintenance_task(&self.shared);
        }
    }

    /// Live (non-deleted) vector count.
    pub fn len(&self) -> usize {
        self.snapshot().live_len()
    }

    /// `true` when no live vectors remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Global ids of every live vector, ascending.
    pub fn live_ids(&self) -> Vec<u32> {
        let set = self.snapshot();
        let mut out = Vec::with_capacity(set.live_len());
        for seg in &set.segments {
            out.extend(
                seg.core
                    .ids
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| !seg.tombstones.is_dead(i))
                    .map(|(_, &id)| id),
            );
        }
        out.extend(
            set.buffer
                .ids
                .iter()
                .enumerate()
                .filter(|&(i, _)| !set.buffer.tombstones.is_dead(i))
                .map(|(_, &id)| id),
        );
        out
    }

    /// `true` when `id` exists and is not tombstoned.
    pub fn contains(&self, id: u32) -> bool {
        let set = self.snapshot();
        for seg in &set.segments {
            if let Some(local) = seg.local_of(id) {
                return !seg.tombstones.is_dead(local);
            }
        }
        if let Ok(local) = set.buffer.ids.binary_search(&id) {
            return !set.buffer.tombstones.is_dead(local);
        }
        false
    }

    /// Encodes and appends the rows of `data` into the write buffer,
    /// returning their assigned global ids. The rows are searchable as
    /// soon as this returns; sealing happens asynchronously (or inline
    /// under a [`SegmentPolicy::sequential`] policy). Writers block only
    /// when the buffer outruns the in-flight seal by 2× the threshold
    /// (backpressure).
    pub fn add(&self, data: &Matrix) -> Result<Vec<u32>, VaqError> {
        let model = &self.shared.model;
        if data.cols() != model.pca.dim() {
            return Err(VaqError::BadConfig(format!(
                "appended vectors have {} dims, index expects {}",
                data.cols(),
                model.pca.dim()
            )));
        }
        if data.rows() == 0 {
            return Ok(Vec::new());
        }
        // Encoding is lock-free: the model is immutable.
        let projected = model.pca.transform(data)?;
        let new_codes = model.encoder.encode_all(&projected);

        let mut run_inline = false;
        let mut join_for_backpressure = None;
        let ids: Vec<u32>;
        {
            let mut st = wlock(&self.shared);
            let rows = data.rows() as u64;
            if u64::from(st.next_id) + rows > u64::from(u32::MAX) {
                return Err(VaqError::BadConfig("id space exhausted (u32 ids)".into()));
            }
            let first = st.next_id;
            // Write-ahead: the record must be durable before the state
            // changes; on append failure nothing was applied and the
            // caller sees the error.
            journal_append(
                &self.shared,
                &wal::WalOp::Add { first_id: first, rows: data.rows(), codes: new_codes.clone() },
            )?;
            st.next_id += data.rows() as u32;
            ids = (first..st.next_id).collect();

            let cur = read_current(&self.shared);
            let mut buffer = (*cur.buffer).clone();
            buffer.ids.extend_from_slice(&ids);
            buffer.codes.extend_from_slice(&new_codes);
            buffer.tombstones = {
                let mut t = Tombstones::with_len(buffer.ids.len());
                t.words.to_mut()[..cur.buffer.tombstones.words().len()]
                    .copy_from_slice(cur.buffer.tombstones.words());
                t.dead = cur.buffer.tombstones.dead();
                t
            };
            let buffered = buffer.rows();
            install(
                &self.shared,
                SegmentSet { segments: cur.segments.clone(), buffer: Arc::new(buffer) },
            );

            if buffered >= self.shared.policy.seal_threshold && !st.maintenance {
                st.maintenance = true;
                run_inline = !self.spawn_maintenance(&mut st);
            } else if st.maintenance && buffered >= self.shared.policy.backpressure_rows() {
                join_for_backpressure = st.inflight.take();
            }
        }
        if run_inline {
            maintenance_task(&self.shared);
        }
        if let Some(handle) = join_for_backpressure {
            let _ = handle.join();
        }
        Ok(ids)
    }

    /// Tombstones `id`. Returns `true` when the id existed and was live.
    /// The row stops appearing in queries with the next snapshot; its
    /// storage is reclaimed by compaction. On a durable index a failed
    /// WAL append surfaces as `false` (nothing was deleted); use
    /// [`SegmentedVaq::try_delete`] to distinguish "not found" from an IO
    /// failure.
    pub fn delete(&self, id: u32) -> bool {
        self.try_delete(id).unwrap_or(false)
    }

    /// [`SegmentedVaq::delete`] with the IO error surfaced: on a durable
    /// index the tombstone record must reach the write-ahead log before
    /// the in-memory state changes, and that append can fail.
    pub fn try_delete(&self, id: u32) -> Result<bool, VaqError> {
        let mut run_inline = false;
        let killed;
        {
            let mut st = wlock(&self.shared);
            let cur = read_current(&self.shared);
            let mut purge_eligible = false;
            let mut next: Option<SegmentSet> = None;
            if let Some(pos) = cur.segments.iter().position(|seg| seg.local_of(id).is_some()) {
                let seg = &cur.segments[pos];
                // `local_of` succeeded above.
                let Some(local) = seg.local_of(id) else { return Ok(false) };
                let mut tombstones = seg.tombstones.clone();
                if tombstones.kill(local) {
                    let mut segments = cur.segments.clone();
                    segments[pos] = Segment { core: Arc::clone(&seg.core), tombstones };
                    purge_eligible =
                        segments[pos].dead_frac() >= self.shared.policy.tombstone_purge_frac;
                    next = Some(SegmentSet { segments, buffer: Arc::clone(&cur.buffer) });
                }
            } else if let Ok(local) = cur.buffer.ids.binary_search(&id) {
                let mut buffer = (*cur.buffer).clone();
                if buffer.tombstones.kill(local) {
                    next = Some(SegmentSet {
                        segments: cur.segments.clone(),
                        buffer: Arc::new(buffer),
                    });
                }
            }
            killed = next.is_some();
            if let Some(set) = next {
                // Write-ahead: the tombstone record goes to the log
                // before the snapshot flips; a failed append applies
                // nothing.
                journal_append(&self.shared, &wal::WalOp::Delete { id })?;
                install(&self.shared, set);
            }
            if purge_eligible && !st.maintenance {
                st.maintenance = true;
                run_inline = !self.spawn_maintenance(&mut st);
            }
        }
        if run_inline {
            maintenance_task(&self.shared);
        }
        Ok(killed)
    }

    /// Replaces `id` with a re-encoded `vector`: tombstones the old row
    /// and appends the new one under a fresh id (returned). `Ok(None)`
    /// when `id` was not live. The two steps are individually atomic but
    /// a concurrent reader may observe the gap between them.
    pub fn update(&self, id: u32, vector: &[f32]) -> Result<Option<u32>, VaqError> {
        if !self.try_delete(id)? {
            return Ok(None);
        }
        let ids = self.add(&Matrix::from_rows(&[vector.to_vec()]))?;
        Ok(ids.first().copied())
    }

    /// Searches with the model's default strategy. Convenience wrapper —
    /// query loops should hold a [`SegmentedVaq::searcher`] instead.
    pub fn search(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, VaqError> {
        Ok(self.search_with(query, k, self.shared.model.default_strategy)?.0)
    }

    /// Searches with an explicit strategy, returning work counters summed
    /// over all segments plus the buffer.
    pub fn search_with(
        &self,
        query: &[f32],
        k: usize,
        strategy: SearchStrategy,
    ) -> Result<(Vec<Neighbor>, SearchStats), VaqError> {
        let set = self.snapshot();
        let mut engine = QueryEngine::new();
        search_set(&self.shared.model, &set, &mut engine, query, k, strategy)
    }

    /// A reusable per-thread query handle: caches the snapshot and the
    /// table arena, so the steady-state query path performs one relaxed
    /// atomic load and zero locks/allocations.
    pub fn searcher(&self) -> SegmentSearcher {
        // ORDERING: Acquire pairs with the Release bump in `install`.
        // The version MUST be read before the snapshot (seqlock order):
        // the cached version is then never newer than the cached set, so
        // an install racing between the two reads only costs `refresh` a
        // spurious re-clone. Reading set-then-version could pair a new
        // version with a stale set and pin the searcher to it forever —
        // the loom suite (`snapshots_never_regress`) catches exactly
        // that inversion.
        let version = self.shared.version.load(Ordering::Acquire);
        let set = self.snapshot();
        SegmentSearcher {
            shared: Arc::clone(&self.shared),
            version,
            set,
            engine: QueryEngine::new(),
        }
    }

    /// Drains pending maintenance synchronously: joins any in-flight
    /// background pass, then seals and compacts inline until the buffer
    /// is below the seal threshold and no compaction is eligible. Queries
    /// keep running throughout.
    pub fn flush(&self) {
        loop {
            let (handle, claimed) = {
                let mut st = wlock(&self.shared);
                let handle = st.inflight.take();
                if handle.is_some() {
                    (handle, false)
                } else if st.maintenance {
                    // An inline pass on another thread: wait and re-check.
                    (None, false)
                } else {
                    let cur = read_current(&self.shared);
                    let pending = cur.buffer.rows() >= self.shared.policy.seal_threshold
                        || pick_compaction(&cur, &self.shared.policy).is_some();
                    if pending {
                        st.maintenance = true;
                    }
                    if !pending {
                        return;
                    }
                    (None, true)
                }
            };
            if let Some(h) = handle {
                let _ = h.join();
            } else if claimed {
                maintenance_task(&self.shared);
            } else {
                thread::yield_now();
            }
        }
    }

    /// Makes the index durable at `path`: atomically commits a
    /// checksummed `VAQ3` manifest snapshot (see [`SegmentedVaq::save`])
    /// and attaches a fresh write-ahead log at `<path>.wal`. From this
    /// point every `add`/`delete`/`update` is logged *before* it is
    /// applied, so after a crash [`SegmentedVaq::open_durable`] recovers
    /// the exact pre-crash logical state. Calling this again on an
    /// already-durable index is a **checkpoint**: the manifest absorbs
    /// the logged suffix and the log restarts empty.
    ///
    /// Writers are quiesced for the duration (manifest bytes, WAL state,
    /// and id counter must form one consistent cut); queries keep
    /// running.
    pub fn make_durable(&self, path: &Path) -> Result<(), VaqError> {
        let _span = crate::obs::span("segment.checkpoint");
        let st = wlock(&self.shared);
        let mut jl = jlock(&self.shared);
        let last_seq = jl.as_ref().map(|j| j.wal.last_seq()).unwrap_or(0);
        let set = read_current(&self.shared);
        let bytes = crate::persist::manifest_from_set(
            &self.shared.model,
            &self.shared.policy,
            &set,
            st.next_id,
            last_seq,
        );
        crate::persist::commit_bytes(path, &bytes)?;
        // Manifest committed: restart the log. A crash between the two
        // leaves the old WAL in place, whose records all sit at or below
        // the manifest's watermark and are skipped on replay.
        let w = wal::Wal::create(&wal::wal_path(path), last_seq)?;
        *jl = Some(wal::Journal {
            wal: w,
            manifest_path: path.to_path_buf(),
            base_next_id: st.next_id,
            add_ranges: Vec::new(),
        });
        crate::obs::event(
            "segment.checkpoint",
            &format!("manifest committed at wal_seq {last_seq}"),
        );
        Ok(())
    }

    /// Checkpoints a durable index to the manifest path registered by
    /// [`SegmentedVaq::make_durable`] / [`SegmentedVaq::open_durable`];
    /// errors when the index is not durable.
    pub fn checkpoint(&self) -> Result<(), VaqError> {
        let path = {
            let jl = jlock(&self.shared);
            match jl.as_ref() {
                Some(j) => j.manifest_path.clone(),
                None => {
                    return Err(VaqError::BadConfig(
                        "index is not durable: call make_durable(path) first".into(),
                    ))
                }
            }
        };
        self.make_durable(&path)
    }

    /// Opens a durable index: loads the manifest at `path` (any format),
    /// replays the write-ahead-log suffix past the manifest's watermark
    /// (truncating a torn tail record instead of erroring — the op it
    /// logged never returned success), re-audits, and re-attaches the
    /// journal so the index continues durably. Recovery reaches the
    /// exact logical state of every acknowledged mutation before the
    /// crash.
    pub fn open_durable(path: &Path) -> Result<SegmentedVaq, VaqError> {
        let _span = crate::obs::span("segment.recover");
        let data = crate::persist::read_index_file(path)?;
        let (index, manifest_seq) = SegmentedVaq::from_bytes_with_seq(&data)?;
        // A stale staging file from an interrupted commit is dead weight;
        // the rename never happened, so it holds a torn manifest.
        if std::fs::remove_file(crate::persist::tmp_path(path)).is_ok() {
            crate::obs::event("segment.recover", "removed stale staging file");
        }
        let (base_next_id, _) = index.writer_probe();
        let wal_file = wal::wal_path(path);
        let scan = wal::scan(&wal_file)?;
        if scan.torn {
            crate::obs::counter_add("wal.torn_tail_truncated", 1);
            crate::obs::event("segment.recover", "truncated torn wal tail");
        }
        let mut last_seq = manifest_seq;
        let mut replayed = 0u64;
        let mut add_ranges: Vec<(u32, u32)> = Vec::new();
        for rec in &scan.records {
            if rec.seq <= manifest_seq {
                // Already baked into the manifest (a checkpoint crashed
                // between the manifest rename and the WAL restart).
                continue;
            }
            if rec.seq != last_seq + 1 {
                return Err(wal::corrupt("sequence gap after the manifest watermark"));
            }
            index.apply_wal(&rec.op)?;
            if let wal::WalOp::Add { first_id, rows, .. } = rec.op {
                let end = first_id.saturating_add(u32::try_from(rows).unwrap_or(u32::MAX));
                match add_ranges.last_mut() {
                    Some(last) if last.1 == first_id => last.1 = end,
                    _ => add_ranges.push((first_id, end)),
                }
            }
            last_seq = rec.seq;
            replayed += 1;
        }
        index.normalize_after_load();
        // Replayed records are as untrusted as the manifest: re-run the
        // full structural audit on the recovered state.
        let report = crate::audit::Audit::audit(&index);
        if !report.is_ok() {
            return Err(VaqError::BadConfig(format!(
                "corrupt index file: audit found {} invariant violation(s) after recovery",
                report.issues().len()
            )));
        }
        crate::obs::counter_add("wal.replayed", replayed);
        crate::obs::event(
            "segment.recover",
            &format!("replayed {replayed} wal record(s) past watermark {manifest_seq}"),
        );
        let w = wal::Wal::open_append(&wal_file, scan.clean_len, last_seq)?;
        {
            let _st = wlock(&index.shared);
            let mut jl = jlock(&index.shared);
            *jl = Some(wal::Journal {
                wal: w,
                manifest_path: path.to_path_buf(),
                base_next_id,
                add_ranges,
            });
        }
        Ok(index)
    }

    /// Applies one replayed WAL record. Seal/compact markers are
    /// advisory: maintenance is re-derived from policy, and the logical
    /// state replay must reproduce does not depend on segmentation.
    fn apply_wal(&self, op: &wal::WalOp) -> Result<(), VaqError> {
        match op {
            wal::WalOp::Add { first_id, rows, codes } => {
                self.apply_wal_add(*first_id, *rows, codes)
            }
            wal::WalOp::Delete { id } => {
                // Idempotent: the id may already be gone (e.g. logged
                // twice around a checkpoint race). No journal is attached
                // during replay, so nothing is re-logged.
                let _ = self.try_delete(*id)?;
                Ok(())
            }
            wal::WalOp::Seal { .. } | wal::WalOp::Compact { .. } => Ok(()),
        }
    }

    /// Replays one logged add: appends the already-encoded codes to the
    /// write buffer under the ids the original add assigned. The codes
    /// are untrusted (they came from disk) and are range-checked against
    /// the dictionaries exactly like manifest codes.
    fn apply_wal_add(&self, first_id: u32, rows: usize, codes: &[u16]) -> Result<(), VaqError> {
        let model = &self.shared.model;
        let m = model.encoder.num_subspaces();
        let expect = rows.checked_mul(m).ok_or_else(|| wal::corrupt("add size overflow"))?;
        if rows == 0 || codes.len() != expect {
            return Err(wal::corrupt("add record shape mismatch"));
        }
        for (i, &c) in codes.iter().enumerate() {
            if usize::from(c) >= model.encoder.codebooks[i % m].rows() {
                return Err(wal::corrupt("code exceeds dictionary size"));
            }
        }
        let rows_u32 =
            u32::try_from(rows).map_err(|_| wal::corrupt("add row count does not fit u32"))?;
        let mut st = wlock(&self.shared);
        let end = u64::from(first_id) + u64::from(rows_u32);
        if end > u64::from(u32::MAX) {
            return Err(wal::corrupt("add range exhausts the id space"));
        }
        if first_id < st.next_id {
            if end <= u64::from(st.next_id) {
                // Entire range already in the snapshot: idempotent skip.
                crate::obs::counter_add("wal.replay_skipped", 1);
                return Ok(());
            }
            return Err(wal::corrupt("add range overlaps the snapshot"));
        }
        if first_id > st.next_id {
            return Err(wal::corrupt("add range leaves an id gap"));
        }
        st.next_id = first_id + rows_u32;
        let ids: Vec<u32> = (first_id..st.next_id).collect();
        let cur = read_current(&self.shared);
        let mut buffer = (*cur.buffer).clone();
        buffer.ids.extend_from_slice(&ids);
        buffer.codes.extend_from_slice(codes);
        buffer.tombstones = {
            let mut t = Tombstones::with_len(buffer.ids.len());
            t.words.to_mut()[..cur.buffer.tombstones.words().len()]
                .copy_from_slice(cur.buffer.tombstones.words());
            t.dead = cur.buffer.tombstones.dead();
            t
        };
        install(
            &self.shared,
            SegmentSet { segments: cur.segments.clone(), buffer: Arc::new(buffer) },
        );
        Ok(())
    }

    /// A point-in-time journal summary for the audit (VAQ112), or `None`
    /// when the index is not durable. Captured under the writer lock so
    /// `next_id` and the logged ranges form one consistent cut.
    pub(crate) fn wal_summary(&self) -> Option<wal::WalSummary> {
        let st = wlock(&self.shared);
        let jl = jlock(&self.shared);
        jl.as_ref().map(|j| wal::WalSummary {
            base_next_id: j.base_next_id,
            add_ranges: j.add_ranges.clone(),
            last_seq: j.wal.last_seq(),
            next_id: st.next_id,
        })
    }

    /// Spawns the maintenance pass on a background thread when the policy
    /// and thread budget allow; returns `false` when the caller must run
    /// it inline. The `maintenance` flag is already claimed.
    fn spawn_maintenance(&self, st: &mut WriterState) -> bool {
        if !self.shared.policy.background || crate::threads::thread_budget() <= 1 {
            return false;
        }
        let shared = Arc::clone(&self.shared);
        match thread::Builder::new()
            .name("vaq-segment-maintenance".into())
            .spawn(move || maintenance_task(&shared))
        {
            Ok(handle) => {
                st.inflight = Some(handle);
                true
            }
            Err(_) => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Query fan-out
// ---------------------------------------------------------------------------

/// A snapshot-caching query handle. `search` re-validates the cached
/// snapshot with one atomic version load; only when a writer installed a
/// new snapshot does it take the brief `RwLock` read to re-clone. Hold
/// one per query thread.
#[derive(Debug)]
pub struct SegmentSearcher {
    shared: Arc<Shared>,
    version: u64,
    set: Arc<SegmentSet>,
    engine: QueryEngine,
}

impl SegmentSearcher {
    /// Re-validates the cached snapshot (one atomic load; re-clones only
    /// after a write). Called automatically by the search methods.
    pub fn refresh(&mut self) {
        // ORDERING: Acquire pairs with the Release bump in `install`: if
        // this load observes the new version, the RwLock read below is
        // guaranteed to observe (at least) the snapshot that bump
        // published, so the searcher can never cache a version number
        // newer than the snapshot it holds.
        let v = self.shared.version.load(Ordering::Acquire);
        if v != self.version {
            self.set = read_current(&self.shared);
            self.version = v;
        }
    }

    /// The snapshot this searcher currently queries.
    pub fn snapshot(&self) -> &SegmentSet {
        &self.set
    }

    /// Searches with the model's default strategy.
    pub fn search(&mut self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, VaqError> {
        let strategy = self.shared.model.default_strategy;
        Ok(self.search_with(query, k, strategy)?.0)
    }

    /// Searches with an explicit strategy.
    pub fn search_with(
        &mut self,
        query: &[f32],
        k: usize,
        strategy: SearchStrategy,
    ) -> Result<(Vec<Neighbor>, SearchStats), VaqError> {
        self.refresh();
        search_set(&self.shared.model, &self.set, &mut self.engine, query, k, strategy)
    }
}

/// Fans one query out over every segment plus the buffer and k-way-merges
/// the partial top-k (sort by `(distance, global id)`, truncate). Stats
/// are summed; distances come back in metric (unsquared) space.
fn search_set(
    model: &Model,
    set: &SegmentSet,
    engine: &mut QueryEngine,
    query: &[f32],
    k: usize,
    strategy: SearchStrategy,
) -> Result<(Vec<Neighbor>, SearchStats), VaqError> {
    let projected = model.pca.transform_vec(query)?;
    let mut stats = SearchStats::default();
    let mut merged: Vec<Neighbor> = Vec::new();
    for seg in &set.segments {
        if seg.live() == 0 {
            continue;
        }
        // A mapped segment's extents are checksum/content-verified on the
        // first search that touches them (lazy CRC); a failure is a typed
        // corruption error, never a wrong answer or a panic.
        seg.core.ensure_verified(matches!(strategy, SearchStrategy::Quantized))?;
        let view = IndexView::from_encoder(&model.encoder, &seg.core.codes, seg.core.n)
            .with_ti(seg.core.ti.as_ref())
            .with_packed(Some(&seg.core.packed))
            .with_dead(seg.tombstones.filter())
            .with_prefetch(seg.core.prefetch());
        let (part, s) = engine.search_squared(&view, &projected, k, strategy);
        stats += s;
        merged.extend(
            part.into_iter().map(|nb| Neighbor { index: seg.core.ids[nb.index as usize], ..nb }),
        );
    }
    if set.buffer.live() > 0 {
        // The buffer has no TI partition and no packing: it is scanned
        // *exactly* with early abandoning, whatever the segment strategy.
        let buf_strategy = match strategy {
            SearchStrategy::TiEa { .. } | SearchStrategy::Quantized => SearchStrategy::EarlyAbandon,
            exact => exact,
        };
        let view = IndexView::from_encoder(&model.encoder, &set.buffer.codes, set.buffer.rows())
            .with_dead(set.buffer.tombstones.filter());
        let (part, s) = engine.search_squared(&view, &projected, k, buf_strategy);
        stats += s;
        merged.extend(
            part.into_iter().map(|nb| Neighbor { index: set.buffer.ids[nb.index as usize], ..nb }),
        );
    }
    merged.sort();
    merged.truncate(k);
    for nb in merged.iter_mut() {
        nb.distance = nb.distance.max(0.0).sqrt();
    }
    Ok((merged, stats))
}

// ---------------------------------------------------------------------------
// Maintenance: seal + compaction
// ---------------------------------------------------------------------------

/// One maintenance pass: seal the frozen buffer, compact until quiescent,
/// and repeat while writers refilled the buffer past the threshold in the
/// meantime. Runs on the background thread or inline; the `maintenance`
/// flag is held for the whole pass and cleared at the end — the final
/// re-check happens under the writer lock, so whenever the flag is down
/// the buffer is below the seal threshold (audit code VAQ111). A failed
/// (fault-injected) seal ends the pass instead of retrying hot; the next
/// add/flush trigger retries it.
fn maintenance_task(shared: &Arc<Shared>) {
    loop {
        let sealed = seal_step(shared);
        compact_step(shared);
        let mut st = wlock(shared);
        let drained = read_current(shared).buffer.rows() < shared.policy.seal_threshold.max(1);
        if drained || !sealed {
            st.maintenance = false;
            return;
        }
    }
}

/// Packs the current buffer prefix into a new sealed segment. The
/// expensive work (packing + per-segment TI build) runs without any lock
/// against a frozen prefix — adds only append past it and deletes only
/// set bits, which are re-read at install time. A failed seal (fault
/// site `segment.seal`) keeps the buffer intact and queryable and
/// returns `false` so the maintenance loop gives up instead of spinning.
fn seal_step(shared: &Arc<Shared>) -> bool {
    let frozen = read_current(shared);
    let rows = frozen.buffer.rows();
    if rows == 0 {
        return true;
    }
    let _span = crate::obs::span("segment.seal");
    if crate::faults::fired("segment.seal") {
        crate::faults::note_degradation("segment.seal: seal failed, write buffer retained");
        return false;
    }
    let core = build_core(
        &shared.model,
        &shared.policy,
        frozen.buffer.ids.clone(),
        frozen.buffer.codes.clone(),
    );

    let _st = wlock(shared);
    let cur = read_current(shared);
    // The frozen prefix is still the buffer's prefix (appends only grow
    // it); carry over any tombstones set while the build ran.
    let mut tombstones = Tombstones::with_len(rows);
    for i in 0..rows {
        if cur.buffer.tombstones.is_dead(i) {
            tombstones.kill(i);
        }
    }
    let m = shared.model.encoder.num_subspaces();
    let mut rest = Buffer {
        ids: cur.buffer.ids[rows..].to_vec(),
        codes: cur.buffer.codes[rows * m..].to_vec(),
        tombstones: Tombstones::with_len(cur.buffer.rows() - rows),
    };
    for i in rows..cur.buffer.rows() {
        if cur.buffer.tombstones.is_dead(i) {
            rest.tombstones.kill(i - rows);
        }
    }
    let mut segments = cur.segments.clone();
    segments.push(Segment { core: Arc::new(core), tombstones });
    let total = segments.len();
    install(shared, SegmentSet { segments, buffer: Arc::new(rest) });
    // Advisory commit marker: replay re-derives sealing from policy, but
    // the marker lets offline tooling see maintenance points in the log.
    journal_note(shared, &wal::WalOp::Seal { rows });
    crate::obs::event("segment.seal", &format!("sealed {rows} rows; {total} segments"));
    true
}

/// What the compaction loop should do next, against one snapshot.
enum CompactionJob {
    /// Rewrite segment `i` dropping its tombstoned rows.
    Purge(usize),
    /// Merge adjacent segments `i` and `i + 1`.
    Merge(usize),
}

fn pick_compaction(set: &SegmentSet, policy: &SegmentPolicy) -> Option<CompactionJob> {
    // Purges first: they shrink data and can unblock better merges.
    for (i, seg) in set.segments.iter().enumerate() {
        if seg.tombstones.dead() > 0 && seg.dead_frac() >= policy.tombstone_purge_frac {
            return Some(CompactionJob::Purge(i));
        }
    }
    if set.segments.len() >= policy.compact_min_segments {
        // Merge the adjacent pair with the fewest combined live rows —
        // adjacency keeps per-segment id ranges disjoint and ascending.
        let best = set
            .segments
            .windows(2)
            .enumerate()
            .min_by_key(|(_, w)| w[0].live() + w[1].live())
            .map(|(i, _)| i);
        if let Some(i) = best {
            return Some(CompactionJob::Merge(i));
        }
    }
    None
}

/// Merges small adjacent segments and purges tombstones until no job is
/// eligible. Each rebuild runs without locks against a frozen snapshot;
/// deletes that land during the rebuild are re-applied at install. A
/// failed compaction (fault site `segment.compact`) keeps its inputs.
fn compact_step(shared: &Arc<Shared>) {
    loop {
        let frozen = read_current(shared);
        let Some(job) = pick_compaction(&frozen, &shared.policy) else { return };
        let _span = crate::obs::span("segment.compact");
        if crate::faults::fired("segment.compact") {
            crate::faults::note_degradation(
                "segment.compact: compaction failed, input segments retained",
            );
            return;
        }
        let (pos, len, kind) = match job {
            CompactionJob::Purge(i) => (i, 1usize, "segment.tombstone_purge"),
            CompactionJob::Merge(i) => (i, 2usize, "segment.compact"),
        };
        let srcs = &frozen.segments[pos..pos + len];
        // Gather live rows (at freeze time) in id order, remembering the
        // (segment, local) source of every merged row so deletes that
        // raced the rebuild can be re-applied at install.
        let m = shared.model.encoder.num_subspaces();
        let mut ids = Vec::new();
        let mut codes = Vec::new();
        let mut origins: Vec<(usize, usize)> = Vec::new();
        for (s, seg) in srcs.iter().enumerate() {
            for local in 0..seg.core.n {
                if seg.tombstones.is_dead(local) {
                    continue;
                }
                ids.push(seg.core.ids[local]);
                codes.extend_from_slice(&seg.core.codes[local * m..(local + 1) * m]);
                origins.push((pos + s, local));
            }
        }
        let dropped: usize = srcs.iter().map(|s| s.tombstones.dead()).sum();
        let merged =
            (!ids.is_empty()).then(|| build_core(&shared.model, &shared.policy, ids, codes));

        let _st = wlock(shared);
        let cur = read_current(shared);
        // Only one maintenance pass runs at a time and nothing else
        // restructures `segments`, so positions are stable; verify the
        // cores anyway and abort (inputs retained) on any surprise.
        let stable = cur.segments.len() == frozen.segments.len()
            && (pos..pos + len)
                .all(|i| Arc::ptr_eq(&cur.segments[i].core, &frozen.segments[i].core));
        if !stable {
            crate::faults::note_degradation(
                "segment.compact: snapshot changed shape mid-rebuild, inputs retained",
            );
            return;
        }
        let mut segments: Vec<Segment> = Vec::with_capacity(cur.segments.len());
        segments.extend_from_slice(&cur.segments[..pos]);
        if let Some(core) = merged {
            let mut tombstones = Tombstones::with_len(core.n);
            for (row, &(s, local)) in origins.iter().enumerate() {
                if cur.segments[s].tombstones.is_dead(local) {
                    tombstones.kill(row);
                }
            }
            segments.push(Segment { core: Arc::new(core), tombstones });
        }
        segments.extend_from_slice(&cur.segments[pos + len..]);
        let total = segments.len();
        install(shared, SegmentSet { segments, buffer: Arc::clone(&cur.buffer) });
        journal_note(shared, &wal::WalOp::Compact { segments: len });
        crate::obs::event(
            kind,
            &format!("compacted {len} segment(s), purged {dropped} rows; {total} segments"),
        );
    }
}

/// Builds a sealed segment's immutable payload: the blocked packing plus
/// a per-segment TI partition (best-effort — a TI failure degrades the
/// segment to exact scans, mirroring `ti.build` at train time).
fn build_core(
    model: &Model,
    policy: &SegmentPolicy,
    ids: Vec<u32>,
    codes: Vec<u16>,
) -> SegmentCore {
    let n = ids.len();
    let sizes: Vec<usize> = model.encoder.table_sizes().collect();
    let packed = PackedCodes::pack(&codes, &sizes, n);
    crate::obs::note_truncated_packing(&packed, "segment.seal");
    let ti = if policy.ti_clusters > 0 && n > 0 {
        let seed = model.seed ^ u64::from(ids.first().copied().unwrap_or(0)).rotate_left(17);
        match TiPartition::build(
            &model.encoder,
            &codes,
            n,
            policy.ti_clusters.min(n),
            model.ti_prefix_subspaces,
            seed,
        ) {
            Ok(ti) => Some(ti),
            Err(_) => {
                crate::faults::note_degradation(
                    "segment.seal: per-segment TI build failed, segment scans exactly",
                );
                None
            }
        }
    } else {
        None
    };
    SegmentCore { ids: ids.into(), codes: codes.into(), n, packed, ti, lazy: None }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_data(n: usize, d: usize, seed: u64) -> Matrix {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(d);
            for j in 0..d {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = ((s >> 40) as f32 / (1u32 << 23) as f32) - 1.0;
                row.push(v * 2.0 / (1.0 + j as f32 * 0.25));
            }
            rows.push(row);
        }
        Matrix::from_rows(&rows)
    }

    fn cfg() -> VaqConfig {
        VaqConfig::new(20, 4).with_ti_clusters(16)
    }

    fn policy() -> SegmentPolicy {
        SegmentPolicy::default()
            .with_seal_threshold(48)
            .with_compact_min_segments(3)
            .with_ti_clusters(8)
            .sequential()
    }

    fn ids_of(hits: &[Neighbor]) -> Vec<u32> {
        hits.iter().map(|h| h.index).collect()
    }

    #[test]
    fn single_segment_matches_the_monolithic_index() {
        let data = toy_data(300, 10, 3);
        let vaq = Vaq::train(&data, &cfg()).unwrap();
        let seg = SegmentedVaq::from_vaq(vaq.clone(), policy());
        for qi in [0usize, 77, 250] {
            let q = data.row(qi);
            for strategy in [
                SearchStrategy::FullScan,
                SearchStrategy::EarlyAbandon,
                SearchStrategy::TiEa { visit_frac: 1.0 },
                SearchStrategy::Quantized,
            ] {
                let mono = vaq.search_with(q, 10, strategy).unwrap().0;
                let segd = seg.search_with(q, 10, strategy).unwrap().0;
                assert_eq!(mono, segd, "query {qi} {strategy:?}");
            }
            // The default-strategy entry point agrees too.
            assert_eq!(vaq.search(q, 5).unwrap(), seg.search(q, 5).unwrap(), "query {qi} default");
        }
    }

    #[test]
    fn adds_cross_seal_boundaries_and_stay_exact() {
        let data = toy_data(400, 8, 9);
        let (train, rest) = (toy_data(120, 8, 9), toy_data(280, 8, 77));
        let _ = data;
        let seg = SegmentedVaq::train(&train, &cfg(), policy()).unwrap();
        // A monolithic oracle over the same rows (FullScan is exact).
        let mut oracle = Vaq::train(&train, &cfg()).unwrap();
        for chunk in 0..7 {
            let rows: Vec<Vec<f32>> = (0..40).map(|i| rest.row(chunk * 40 + i).to_vec()).collect();
            let batch = Matrix::from_rows(&rows);
            let ids = seg.add(&batch).unwrap();
            assert_eq!(ids.len(), 40);
            oracle.add(&batch).unwrap();
        }
        let snap = seg.snapshot();
        assert!(snap.num_segments() > 1, "sealing never triggered");
        assert!(snap.buffer_len() < seg.policy().seal_threshold);
        assert_eq!(seg.len(), 400);
        for qi in [0usize, 50, 150] {
            let q = rest.row(qi);
            let mono = oracle.search_with(q, 12, SearchStrategy::FullScan).unwrap().0;
            let segd = seg.search_with(q, 12, SearchStrategy::FullScan).unwrap().0;
            assert_eq!(mono, segd, "query {qi}");
            // The pruned strategies agree with the exact scan.
            let tiea = seg.search_with(q, 12, SearchStrategy::TiEa { visit_frac: 1.0 }).unwrap().0;
            let qz = seg.search_with(q, 12, SearchStrategy::Quantized).unwrap().0;
            assert_eq!(ids_of(&segd), ids_of(&tiea), "query {qi} TiEa");
            assert_eq!(ids_of(&segd), ids_of(&qz), "query {qi} Quantized");
        }
    }

    #[test]
    fn deletes_hide_rows_in_buffer_and_sealed_segments() {
        let train = toy_data(100, 8, 5);
        let seg = SegmentedVaq::train(&train, &cfg(), policy()).unwrap();
        let extra = toy_data(10, 8, 6);
        let new_ids = seg.add(&extra).unwrap();

        // Sealed-segment delete: row 7's nearest neighbor is itself.
        let q = train.row(7).to_vec();
        assert_eq!(seg.search(&q, 1).unwrap()[0].index, 7);
        assert!(seg.delete(7));
        assert!(!seg.delete(7), "double delete must report false");
        assert!(!seg.contains(7));
        assert_ne!(seg.search(&q, 1).unwrap()[0].index, 7);

        // Buffer delete.
        let qb = extra.row(0).to_vec();
        assert_eq!(seg.search(&qb, 1).unwrap()[0].index, new_ids[0]);
        assert!(seg.delete(new_ids[0]));
        assert_ne!(seg.search(&qb, 1).unwrap()[0].index, new_ids[0]);

        assert_eq!(seg.len(), 108);
        assert!(!seg.delete(9_999), "unknown id");
    }

    #[test]
    fn update_moves_a_row_to_a_fresh_id() {
        let train = toy_data(80, 6, 11);
        let seg = SegmentedVaq::train(&train, &cfg(), policy()).unwrap();
        let moved = vec![9.0f32; 6];
        let new_id = seg.update(3, &moved).unwrap().unwrap();
        assert!(new_id >= 80);
        assert!(!seg.contains(3));
        assert_eq!(seg.search(&moved, 1).unwrap()[0].index, new_id);
        assert_eq!(seg.update(3, &moved).unwrap(), None, "stale id");
        assert_eq!(seg.len(), 80);
    }

    #[test]
    fn compaction_merges_small_segments_and_purges_tombstones() {
        let train = toy_data(60, 8, 21);
        let pol = SegmentPolicy::default()
            .with_seal_threshold(30)
            .with_compact_min_segments(3)
            .with_tombstone_purge_frac(0.3)
            .with_ti_clusters(4)
            .sequential();
        let seg = SegmentedVaq::train(&train, &cfg(), pol).unwrap();
        let more = toy_data(120, 8, 22);
        seg.add(&more).unwrap();
        seg.flush();
        let snap = seg.snapshot();
        assert!(
            snap.num_segments() < 3,
            "compaction should keep the segment count below the trigger, got {}",
            snap.num_segments()
        );
        assert_eq!(seg.len(), 180);

        // Deleting >30% of one segment triggers a purge that physically
        // drops the rows.
        let victim_ids: Vec<u32> = seg.live_ids().into_iter().take(70).collect();
        for id in &victim_ids {
            seg.delete(*id);
        }
        seg.flush();
        let snap = seg.snapshot();
        let total_rows: usize = snap.segments.iter().map(|s| s.core.n).sum::<usize>();
        let total_dead: usize = snap.segments.iter().map(|s| s.tombstones.dead()).sum::<usize>();
        assert_eq!(seg.len(), 110);
        assert_eq!(total_rows - total_dead + snap.buffer.live(), 110);
        assert!(
            total_dead < victim_ids.len(),
            "purge never reclaimed tombstoned rows (dead = {total_dead})"
        );
        // Results stay exact after compaction.
        let q = more.row(119);
        let full = seg.search_with(q, 8, SearchStrategy::FullScan).unwrap().0;
        let tiea = seg.search_with(q, 8, SearchStrategy::TiEa { visit_frac: 1.0 }).unwrap().0;
        assert_eq!(ids_of(&full), ids_of(&tiea));
        for h in &full {
            assert!(seg.contains(h.index), "returned a purged/tombstoned id {}", h.index);
        }
    }

    #[test]
    fn searcher_sees_new_snapshots_after_refresh() {
        let train = toy_data(64, 6, 31);
        let seg = SegmentedVaq::train(&train, &cfg(), policy()).unwrap();
        let mut searcher = seg.searcher();
        let probe = vec![0.2f32; 6];
        let before = searcher.search(&probe, 3).unwrap();
        let spike = Matrix::from_rows(&[vec![0.2f32; 6]]);
        let id = seg.add(&spike).unwrap()[0];
        let after = searcher.search(&probe, 3).unwrap();
        assert_ne!(before, after, "searcher never observed the add");
        assert_eq!(after[0].index, id);
        seg.delete(id);
        let gone = searcher.search(&probe, 3).unwrap();
        assert!(gone.iter().all(|h| h.index != id), "searcher saw a tombstoned row");
    }

    #[test]
    fn background_seal_keeps_queries_exact() {
        let train = toy_data(100, 8, 41);
        let pol = SegmentPolicy::default()
            .with_seal_threshold(32)
            .with_compact_min_segments(4)
            .with_ti_clusters(4); // background stays on
        let seg = SegmentedVaq::train(&train, &cfg(), pol).unwrap();
        let more = toy_data(200, 8, 42);
        let mut oracle = Vaq::train(&train, &cfg()).unwrap();
        oracle.add(&more).unwrap();
        for c in 0..10 {
            let rows: Vec<Vec<f32>> = (0..20).map(|i| more.row(c * 20 + i).to_vec()).collect();
            seg.add(&Matrix::from_rows(&rows)).unwrap();
        }
        seg.flush();
        assert_eq!(seg.len(), 300);
        for qi in [0usize, 99, 199] {
            let q = more.row(qi);
            assert_eq!(
                oracle.search_with(q, 10, SearchStrategy::FullScan).unwrap().0,
                seg.search_with(q, 10, SearchStrategy::FullScan).unwrap().0,
                "query {qi}"
            );
        }
    }

    #[test]
    #[cfg(feature = "obs")]
    fn maintenance_events_reach_the_obs_ring() {
        let train = toy_data(40, 6, 51);
        let pol = SegmentPolicy::default()
            .with_seal_threshold(16)
            .with_compact_min_segments(2)
            .with_ti_clusters(2)
            .sequential();
        crate::obs::set_enabled(true);
        let seg = SegmentedVaq::train(&train, &cfg(), pol).unwrap();
        seg.add(&toy_data(40, 6, 52)).unwrap();
        seg.flush();
        crate::obs::set_enabled(false);
        let events = crate::obs::take_events();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&"segment.seal"), "no seal event in {kinds:?}");
        assert!(kinds.contains(&"segment.compact"), "no compact event in {kinds:?}");
    }

    #[cfg(feature = "faults")]
    #[test]
    fn failed_seal_keeps_the_buffer_queryable_and_retries() {
        use crate::faults::{arm, disarm_all, take_degradations, Trigger};
        let train = toy_data(50, 6, 61);
        let seg = SegmentedVaq::train(
            &train,
            &cfg(),
            SegmentPolicy::default().with_seal_threshold(8).with_ti_clusters(2).sequential(),
        )
        .unwrap();
        take_degradations();
        arm("segment.seal", Trigger::Always);
        let extra = toy_data(30, 6, 62);
        let ids = seg.add(&extra).unwrap();
        let segments_during = seg.snapshot().num_segments();
        // Buffer rows stay searchable despite every seal failing.
        let hit = seg.search(extra.row(0), 1).unwrap()[0];
        assert_eq!(hit.index, ids[0]);
        disarm_all();
        let notes = take_degradations();
        assert!(notes.iter().any(|n| n.starts_with("segment.seal")), "{notes:?}");
        seg.flush();
        assert!(seg.snapshot().num_segments() > segments_during, "seal never retried");
        assert!(seg.snapshot().buffer_len() < 8);
        assert_eq!(seg.search(extra.row(0), 1).unwrap()[0].index, ids[0]);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn failed_compaction_keeps_input_segments() {
        use crate::faults::{arm, disarm_all, take_degradations, Trigger};
        let train = toy_data(40, 6, 71);
        let pol = SegmentPolicy::default()
            .with_seal_threshold(16)
            .with_compact_min_segments(2)
            .with_ti_clusters(2)
            .sequential();
        let seg = SegmentedVaq::train(&train, &cfg(), pol).unwrap();
        take_degradations();
        arm("segment.compact", Trigger::Always);
        seg.add(&toy_data(48, 6, 72)).unwrap();
        seg.flush_sealing_only_for_test();
        let before = seg.snapshot().num_segments();
        assert!(before >= 2, "need multiple segments to compact");
        disarm_all();
        // With the fault cleared, flush compacts down.
        seg.flush();
        assert!(seg.snapshot().num_segments() < before);
        assert_eq!(seg.len(), 88);
    }

    #[cfg(feature = "faults")]
    impl SegmentedVaq {
        /// Test-only: runs seal steps but leaves compaction to the fault
        /// schedule under test.
        fn flush_sealing_only_for_test(&self) {
            loop {
                let claimed = {
                    let mut st = wlock(&self.shared);
                    if st.maintenance {
                        false
                    } else if read_current(&self.shared).buffer.rows()
                        >= self.shared.policy.seal_threshold
                    {
                        st.maintenance = true;
                        true
                    } else {
                        return;
                    }
                };
                if claimed {
                    seal_step(&self.shared);
                    wlock(&self.shared).maintenance = false;
                } else {
                    thread::yield_now();
                }
            }
        }
    }

    #[test]
    fn id_space_exhaustion_is_a_typed_error() {
        let train = toy_data(10, 6, 81);
        let seg = SegmentedVaq::train(&train, &cfg(), policy()).unwrap();
        wlock(&seg.shared).next_id = u32::MAX - 1;
        let err = seg.add(&toy_data(5, 6, 82)).unwrap_err();
        assert!(matches!(err, VaqError::BadConfig(_)));
    }
}
