//! Synchronization facade: the one place `vaq-core` touches
//! `std::sync`, `std::sync::atomic`, and `std::thread`.
//!
//! Every other module imports these primitives through here (enforced by
//! lint rule VAQ008), so that building with `RUSTFLAGS="--cfg loom"`
//! swaps in the `loom` model checker's drop-ins and the concurrency
//! tests in `tests/loom_model.rs` explore *every* schedule of the
//! segment snapshot protocol — thread interleavings and, for atomics,
//! which store in the modification order each load observes. Without the
//! facade, a new `use std::sync::...` would silently escape loom
//! coverage and only ever be exercised on schedules the OS happens to
//! produce.
//!
//! What is deliberately *not* swapped under `cfg(loom)`:
//!
//! - `OnceLock`: used only for process-lifetime memoization (the thread
//!   budget); its one-time initialization is not protocol state.
//! - `thread::scope`: the scoped batch workers in `engine`/`encoder`/
//!   `ti` are pure fork-join computation over disjoint chunks with no
//!   shared mutable protocol, so modeling them would only blow up the
//!   schedule space.

#[cfg(not(loom))]
pub use std::sync::{
    Arc, LockResult, Mutex, MutexGuard, OnceLock, PoisonError, RwLock, RwLockReadGuard,
    RwLockWriteGuard,
};

#[cfg(loom)]
pub use loom::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
#[cfg(loom)]
pub use std::sync::{LockResult, OnceLock, PoisonError};

pub mod atomic {
    #[cfg(not(loom))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize};

    #[cfg(loom)]
    pub use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize};

    // `Ordering` is always std's: loom's drop-ins take it directly.
    pub use std::sync::atomic::Ordering;
}

pub mod thread {
    #[cfg(not(loom))]
    pub use std::thread::{
        available_parallelism, scope, spawn, yield_now, Builder, JoinHandle, Scope,
    };

    #[cfg(loom)]
    pub use loom::thread::{
        available_parallelism, scope, spawn, yield_now, Builder, JoinHandle, Scope,
    };
}
