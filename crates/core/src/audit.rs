//! Structural invariant auditing for trained indexes and pipeline stages.
//!
//! Training can succeed numerically while silently violating the paper's
//! structural contract — a bit allocation off-budget, an importance order
//! broken after the repair pass, a code outside its dictionary, a TI
//! cluster that is no longer sorted. The [`Audit`] trait re-checks those
//! contracts after the fact. Each violated invariant is reported with a
//! stable diagnostic code (`VAQ101`–`VAQ113`, documented in DESIGN.md §8)
//! so tests, CI, and the `vaq_cli audit` subcommand can match on them.
//!
//! The pipeline stages call [`Audit::debug_audit`] at the end of each
//! stage: in debug builds a violated invariant aborts with the full
//! report; release builds skip the check entirely.

use crate::encoder::Encoder;
use crate::pipeline::{BitPlan, DictionaryStage, SubspacePlan};
use crate::subspaces::SubspaceLayout;
use crate::ti::TiPartition;
use crate::vaq::{Vaq, VaqConfig};
use std::fmt;
use vaq_linalg::{MappedSpan, TableArena};

/// Hard ceiling on per-subspace bits: codes are stored as `u16`.
pub const MAX_CODE_BITS: usize = 16;

/// One violated invariant: a stable diagnostic code plus detail text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditIssue {
    /// Stable diagnostic code (`VAQ101`…); see DESIGN.md §8.
    pub code: &'static str,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl fmt::Display for AuditIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

/// The outcome of an audit: empty means every checked invariant holds.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    issues: Vec<AuditIssue>,
}

impl AuditReport {
    pub fn new() -> AuditReport {
        AuditReport::default()
    }

    /// Records a violation.
    pub fn push(&mut self, code: &'static str, detail: String) {
        self.issues.push(AuditIssue { code, detail });
    }

    /// Records a violation when `ok` is false; `detail` is only built on
    /// failure.
    pub fn check(&mut self, ok: bool, code: &'static str, detail: impl FnOnce() -> String) {
        if !ok {
            self.push(code, detail());
        }
    }

    /// Absorbs another report's issues.
    pub fn merge(&mut self, other: AuditReport) {
        self.issues.extend(other.issues);
    }

    pub fn is_ok(&self) -> bool {
        self.issues.is_empty()
    }

    pub fn issues(&self) -> &[AuditIssue] {
        &self.issues
    }

    /// `true` when some issue carries the given diagnostic code.
    pub fn has_code(&self, code: &str) -> bool {
        self.issues.iter().any(|i| i.code == code)
    }

    /// `Ok(())` when clean, otherwise the report itself as the error.
    pub fn into_result(self) -> Result<(), AuditReport> {
        if self.is_ok() {
            Ok(())
        } else {
            Err(self)
        }
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.issues.is_empty() {
            return write!(f, "audit clean");
        }
        for (i, issue) in self.issues.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{issue}")?;
        }
        Ok(())
    }
}

/// Re-checks the structural invariants of a trained artifact.
pub trait Audit {
    /// Runs every applicable invariant check, collecting violations.
    fn audit(&self) -> AuditReport;

    /// Debug-build assertion: panics with the full report when an
    /// invariant is violated. Compiles to nothing in release builds.
    fn debug_audit(&self, stage: &str) {
        if cfg!(debug_assertions) {
            let report = self.audit();
            assert!(report.is_ok(), "invariant audit failed after {stage}:\n{report}");
        }
    }
}

impl Audit for SubspaceLayout {
    fn audit(&self) -> AuditReport {
        let mut r = AuditReport::new();
        let d = self.perm.len();
        let m = self.ranges.len();

        // VAQ105 — permutation validity.
        let mut seen = vec![false; d];
        for &p in &self.perm {
            if p >= d || seen[p] {
                r.push("VAQ105", format!("perm is not a permutation of 0..{d} (entry {p})"));
                break;
            }
            seen[p] = true;
        }

        // VAQ105 — ranges contiguous, non-empty, covering [0, d).
        r.check(m > 0, "VAQ105", || "layout has no subspaces".into());
        let mut cursor = 0usize;
        for (s, &(lo, hi)) in self.ranges.iter().enumerate() {
            r.check(lo == cursor, "VAQ105", || {
                format!("subspace {s} starts at {lo}, expected {cursor} (ranges not contiguous)")
            });
            r.check(hi > lo, "VAQ105", || format!("subspace {s} is empty ({lo}..{hi})"));
            cursor = hi;
        }
        r.check(cursor == d, "VAQ105", || {
            format!("ranges cover 0..{cursor} but the layout spans {d} dimensions")
        });

        // VAQ105 — share vectors aligned with the structure.
        r.check(self.variance_share.len() == m, "VAQ105", || {
            format!("{} variance shares for {m} subspaces", self.variance_share.len())
        });
        r.check(self.pc_share.len() == d, "VAQ105", || {
            format!("{} pc shares for {d} dimensions", self.pc_share.len())
        });
        for (s, &w) in self.variance_share.iter().enumerate() {
            r.check(w.is_finite() && w >= 0.0, "VAQ105", || {
                format!("subspace {s} variance share {w} is not a finite non-negative value")
            });
        }

        // VAQ104 — importance monotonicity after the repair pass: subspaces
        // are ordered by non-increasing variance share.
        for s in 1..self.variance_share.len() {
            let (prev, cur) = (self.variance_share[s - 1], self.variance_share[s]);
            r.check(cur <= prev + 1e-9, "VAQ104", || {
                format!("variance share increases at subspace {s}: {prev} -> {cur}")
            });
        }
        r
    }
}

impl Audit for SubspacePlan {
    fn audit(&self) -> AuditReport {
        let mut r = self.layout.audit();
        r.check(self.pca.eigenvalues().len() == self.layout.perm.len(), "VAQ105", || {
            format!(
                "projection has {} components but the layout permutes {}",
                self.pca.eigenvalues().len(),
                self.layout.perm.len()
            )
        });
        r
    }
}

/// Intrinsic bit-vector checks shared by [`BitPlan`] and [`Vaq`].
fn audit_bits(r: &mut AuditReport, bits: &[usize], num_subspaces: usize) {
    r.check(bits.len() == num_subspaces, "VAQ105", || {
        format!("{} bit entries for {num_subspaces} subspaces", bits.len())
    });
    for (s, &b) in bits.iter().enumerate() {
        // C1 coverage: every subspace keeps at least one bit.
        r.check(b >= 1, "VAQ101", || format!("subspace {s} allocated 0 bits (C1 coverage)"));
        // C2 bounds: codes are u16, so 16 bits is the hard ceiling.
        r.check(b <= MAX_CODE_BITS, "VAQ102", || {
            format!("subspace {s} allocated {b} bits, above the {MAX_CODE_BITS}-bit u16 ceiling")
        });
    }
}

impl Audit for BitPlan {
    fn audit(&self) -> AuditReport {
        let mut r = self.layout.audit();
        audit_bits(&mut r, &self.bits, self.layout.ranges.len());
        r
    }
}

impl BitPlan {
    /// Audits the allocation against the *configured* C1–C4 envelope:
    /// C1/C2 per-subspace bounds and the exact C3 budget. (C4
    /// proportionality is a property of the optimizer's objective, not of
    /// a single allocation, so it is asserted by the solver's own
    /// re-check; see `vaq_milp::Model::check_solution`.)
    pub fn audit_constraints(&self, cfg: &VaqConfig) -> AuditReport {
        let mut r = self.audit();
        for (s, &b) in self.bits.iter().enumerate() {
            r.check(b >= cfg.min_bits, "VAQ101", || {
                format!("subspace {s} allocated {b} bits < MinBits {} (C1)", cfg.min_bits)
            });
            r.check(b <= cfg.max_bits, "VAQ102", || {
                format!("subspace {s} allocated {b} bits > MaxBits {} (C2)", cfg.max_bits)
            });
        }
        let total: usize = self.bits.iter().sum();
        r.check(total == cfg.budget_bits, "VAQ103", || {
            format!("allocation sums to {total} bits, budget is {} (C3)", cfg.budget_bits)
        });
        r
    }
}

impl Audit for Encoder {
    fn audit(&self) -> AuditReport {
        let mut r = AuditReport::new();
        let m = self.ranges.len();
        r.check(self.codebooks.len() == m, "VAQ109", || {
            format!("{} codebooks for {m} subspaces", self.codebooks.len())
        });
        r.check(self.bits.len() == m, "VAQ109", || {
            format!("{} bit entries for {m} subspaces", self.bits.len())
        });
        let mut cursor = 0usize;
        for (s, &(lo, hi)) in self.ranges.iter().enumerate() {
            r.check(lo == cursor && hi > lo, "VAQ109", || {
                format!("encoder range {s} is {lo}..{hi}, expected to start at {cursor}")
            });
            cursor = hi;
        }
        for (s, cb) in self.codebooks.iter().enumerate() {
            let (lo, hi) = self.ranges.get(s).copied().unwrap_or((0, 0));
            r.check(cb.cols() == hi - lo, "VAQ109", || {
                format!("codebook {s} is {} wide for subspace width {}", cb.cols(), hi - lo)
            });
            r.check(cb.rows() >= 1, "VAQ109", || format!("codebook {s} is empty"));
            if let Some(&b) = self.bits.get(s) {
                r.check(b <= MAX_CODE_BITS, "VAQ102", || {
                    format!("encoder subspace {s} uses {b} bits, above the u16 ceiling")
                });
                r.check(b > MAX_CODE_BITS || cb.rows() <= (1usize << b), "VAQ109", || {
                    format!("codebook {s} holds {} centroids for {b} bits", cb.rows())
                });
            }
        }
        r
    }
}

impl Encoder {
    /// Audits a filled [`TableArena`] against this encoder's layout:
    /// VAQ107 covers both the arena's own offset contiguity and its
    /// agreement with the dictionary sizes (a truncated or stale arena
    /// fails here before it can misprice a distance).
    pub fn audit_tables(&self, arena: &TableArena) -> AuditReport {
        let mut r = arena.audit();
        let m = self.ranges.len();
        r.check(arena.num_tables() == m, "VAQ107", || {
            format!("arena holds {} tables for {m} subspaces", arena.num_tables())
        });
        for (s, size) in self.table_sizes().enumerate() {
            if s >= arena.num_tables() {
                break;
            }
            let got = arena.table(s).len();
            r.check(got == size, "VAQ107", || {
                format!("arena table {s} has {got} entries, dictionary has {size}")
            });
        }
        r
    }
}

impl Audit for TableArena {
    fn audit(&self) -> AuditReport {
        let mut r = AuditReport::new();
        let offsets = self.offsets();
        if offsets.is_empty() {
            // A never-shaped arena is fine (no tables yet).
            return r;
        }
        r.check(offsets[0] == 0, "VAQ107", || {
            format!("arena offsets start at {}, expected 0", offsets[0])
        });
        for w in offsets.windows(2) {
            r.check(w[0] <= w[1], "VAQ107", || {
                format!("arena offsets decrease: {} -> {}", w[0], w[1])
            });
        }
        r
    }
}

impl Audit for TiPartition {
    fn audit(&self) -> AuditReport {
        let mut r = AuditReport::new();
        r.check(self.centroids.rows() == self.num_clusters(), "VAQ108", || {
            format!("{} centroids for {} clusters", self.centroids.rows(), self.num_clusters())
        });
        r.check(self.centroids.cols() == self.prefix_dim, "VAQ108", || {
            format!("centroids span {} dims, prefix is {}", self.centroids.cols(), self.prefix_dim)
        });
        r.check(self.prefix_subspaces >= 1, "VAQ108", || "prefix spans no subspaces".into());
        for c in 0..self.num_clusters() {
            let (idxs, dists) = (self.cluster_idx(c), self.cluster_dist(c));
            for (&idx, &dist) in idxs.iter().zip(dists) {
                r.check(dist.is_finite() && dist >= 0.0, "VAQ108", || {
                    format!("cluster {c} member {idx} has distance {dist}")
                });
            }
            for w in 0..dists.len().saturating_sub(1) {
                // The binary-searched pruning window requires ascending
                // cached distances.
                r.check(dists[w] <= dists[w + 1], "VAQ108", || {
                    format!(
                        "cluster {c} is not sorted: {} (idx {}) before {} (idx {})",
                        dists[w],
                        idxs[w],
                        dists[w + 1],
                        idxs[w + 1]
                    )
                });
            }
        }
        r
    }
}

/// Audits an `n × m` code array against its encoder: every code must index
/// an existing dictionary entry (and therefore lie in `[0, 2^y_i)`).
fn audit_codes(r: &mut AuditReport, codes: &[u16], n: usize, encoder: &Encoder) {
    let m = encoder.num_subspaces();
    r.check(codes.len() == n * m, "VAQ106", || {
        format!("{} codes for {n} vectors x {m} subspaces", codes.len())
    });
    for (row, code) in codes.chunks_exact(m).enumerate() {
        for (s, &c) in code.iter().enumerate() {
            let rows = encoder.codebooks[s].rows();
            if c as usize >= rows {
                r.push(
                    "VAQ106",
                    format!("vector {row} subspace {s}: code {c} out of range [0, {rows})"),
                );
                // One out-of-range code per subspace is enough signal.
                return;
            }
        }
    }
}

impl Audit for DictionaryStage {
    fn audit(&self) -> AuditReport {
        let mut r = self.layout.audit();
        audit_bits(&mut r, &self.bits, self.layout.ranges.len());
        r.merge(self.encoder.audit());
        audit_codes(&mut r, &self.codes, self.n, &self.encoder);
        r
    }
}

impl Audit for Vaq {
    fn audit(&self) -> AuditReport {
        let mut r = self.layout.audit();
        audit_bits(&mut r, &self.bits, self.layout.ranges.len());
        r.merge(self.encoder.audit());
        r.check(self.encoder.bits() == self.bits.as_slice(), "VAQ109", || {
            "encoder bit widths disagree with the trained allocation".into()
        });
        audit_codes(&mut r, &self.codes, self.n, &self.encoder);

        if let Some(ti) = &self.ti {
            r.merge(ti.audit());
            // The partition must cover every database row exactly once —
            // the exact-membership bitset check, not just a size sum (a
            // double-assigned row plus an omitted one passes the sum).
            r.check(ti.covers_exactly(self.n), "VAQ108", || {
                format!(
                    "TI partition does not cover every row in 0..{} exactly once \
                     (duplicate, out-of-range, or omitted assignment)",
                    self.n
                )
            });
            // The prefix space must end on a subspace boundary of the
            // encoder.
            let m = self.encoder.num_subspaces();
            if ti.prefix_subspaces >= 1 && ti.prefix_subspaces <= m {
                let end = self.encoder.ranges()[ti.prefix_subspaces - 1].1;
                r.check(ti.prefix_dim == end, "VAQ108", || {
                    format!(
                        "prefix dim {} does not match subspace boundary {end} after {} subspaces",
                        ti.prefix_dim, ti.prefix_subspaces
                    )
                });
            } else {
                r.push("VAQ108", format!("prefix spans {} of {m} subspaces", ti.prefix_subspaces));
            }
        }

        // VAQ110 — the blocked packing must mirror `codes` byte for byte:
        // the quantized scan prunes with bounds computed from the packed
        // bytes, so a stale packing (e.g. after an append that skipped
        // re-packing) would silently produce wrong-answer pruning.
        audit_packed(&mut r, &self.packed, &self.codes, self.n, &self.encoder);
        r
    }
}

/// VAQ111: segmented-index structural invariants — shared model
/// consistency, per-segment id/tombstone/TI/packing integrity, pairwise
/// disjoint ascending id ranges, buffer ids above every sealed id, and
/// (when no maintenance pass is in flight) a buffer below the seal
/// threshold.
impl Audit for crate::segment::SegmentedVaq {
    fn audit(&self) -> AuditReport {
        let model = self.shared_model();
        let set = self.snapshot();
        let (next_id, maintenance) = self.writer_probe();

        // Shared model: same invariants a monolithic index carries.
        let mut r = model.layout.audit();
        audit_bits(&mut r, &model.bits, model.layout.ranges.len());
        r.merge(model.encoder.audit());
        r.check(model.encoder.bits() == model.bits.as_slice(), "VAQ109", || {
            "encoder bit widths disagree with the trained allocation".into()
        });

        let mut prev_last: Option<u32> = None;
        for (s, seg) in set.segments.iter().enumerate() {
            let core = &seg.core;
            r.check(core.ids.len() == core.n, "VAQ111", || {
                format!("segment {s} holds {} ids for {} rows", core.ids.len(), core.n)
            });
            r.check(core.n > 0, "VAQ111", || format!("segment {s} is empty"));
            r.check(core.ids.windows(2).all(|w| w[0] < w[1]), "VAQ111", || {
                format!("segment {s} ids are not strictly ascending")
            });
            if let (Some(&first), Some(last)) = (core.ids.first(), prev_last) {
                r.check(first > last, "VAQ111", || {
                    format!("segment {s} starts at id {first}, segment {} ends at {last}", s - 1)
                });
            }
            if let Some(&last) = core.ids.last() {
                r.check(last < next_id, "VAQ111", || {
                    format!("segment {s} holds id {last} >= next_id {next_id}")
                });
                prev_last = Some(last);
            }
            audit_codes(&mut r, &core.codes, core.n, &model.encoder);
            audit_tombstones(&mut r, seg.tombstones.words(), seg.tombstones.dead(), core.n, s);
            if let Some(ti) = &core.ti {
                r.merge(ti.audit());
                r.check(ti.covers_exactly(core.n), "VAQ108", || {
                    format!("segment {s}: TI partition does not cover 0..{} exactly once", core.n)
                });
                let m = model.encoder.num_subspaces();
                if ti.prefix_subspaces >= 1 && ti.prefix_subspaces <= m {
                    let end = model.encoder.ranges()[ti.prefix_subspaces - 1].1;
                    r.check(ti.prefix_dim == end, "VAQ108", || {
                        format!(
                            "segment {s}: prefix dim {} does not match subspace boundary {end}",
                            ti.prefix_dim
                        )
                    });
                } else {
                    r.push(
                        "VAQ108",
                        format!(
                            "segment {s}: prefix spans {} of {m} subspaces",
                            ti.prefix_subspaces
                        ),
                    );
                }
            }
            audit_packed(&mut r, &core.packed, &core.codes, core.n, &model.encoder);
            audit_mapped_span(&mut r, s, "ids", core.ids.mapped_span());
            audit_mapped_span(&mut r, s, "codes", core.codes.mapped_span());
            audit_mapped_span(&mut r, s, "packed", core.packed.storage().mapped_span());
            audit_mapped_span(&mut r, s, "tombstone", seg.tombstones.mapped_span());
            if let Some(ti) = &core.ti {
                audit_mapped_span(&mut r, s, "TI member ids", ti.member_idx.mapped_span());
                audit_mapped_span(&mut r, s, "TI member dists", ti.member_dist.mapped_span());
            }
        }

        let buf = &set.buffer;
        r.check(buf.ids.windows(2).all(|w| w[0] < w[1]), "VAQ111", || {
            "buffer ids are not strictly ascending".into()
        });
        if let (Some(&first), Some(last)) = (buf.ids.first(), prev_last) {
            r.check(first > last, "VAQ111", || {
                format!("buffer starts at id {first}, below sealed id {last}")
            });
        }
        if let Some(&last) = buf.ids.last() {
            r.check(last < next_id, "VAQ111", || {
                format!("buffer holds id {last} >= next_id {next_id}")
            });
        }
        audit_codes(&mut r, &buf.codes, buf.ids.len(), &model.encoder);
        audit_tombstones(
            &mut r,
            buf.tombstones.words(),
            buf.tombstones.dead(),
            buf.ids.len(),
            usize::MAX,
        );
        r.check(
            maintenance || buf.ids.len() < self.policy().seal_threshold.max(1),
            "VAQ111",
            || {
                format!(
                    "buffer holds {} rows, at or above the seal threshold {} with no \
                     maintenance pass in flight",
                    buf.ids.len(),
                    self.policy().seal_threshold
                )
            },
        );

        // VAQ112 — write-ahead-log discipline (durable indexes only):
        // logged add ranges must be strictly ascending and contiguous
        // from the checkpointed id watermark — i.e. disjoint from every
        // id the checkpointed manifest already holds — and must never
        // outrun the live id counter. A violation means replay would
        // collide ids with the snapshot or leave a gap.
        if let Some(ws) = self.wal_summary() {
            let mut cursor = ws.base_next_id;
            for (i, &(start, end)) in ws.add_ranges.iter().enumerate() {
                r.check(start >= cursor && start < end, "VAQ112", || {
                    format!(
                        "wal add range {i} [{start}, {end}) regresses below the \
                         watermark {cursor} or is empty"
                    )
                });
                cursor = cursor.max(end);
            }
            r.check(cursor <= ws.next_id, "VAQ112", || {
                format!(
                    "wal add ranges reach id {cursor}, past next_id {} (last_seq {})",
                    ws.next_id, ws.last_seq
                )
            });
        }
        r
    }
}

/// VAQ113: a mapped extent must sit entirely inside the file it was
/// mapped from and start on a page boundary (the `VAQ4` writer aligns
/// every extent; a span that drifted would read a neighbour's bytes).
/// Owned storages (`span == None`) have nothing to check.
fn audit_mapped_span(r: &mut AuditReport, s: usize, what: &str, span: Option<MappedSpan>) {
    let Some(span) = span else { return };
    r.check(
        span.offset.checked_add(span.byte_len).is_some_and(|end| end <= span.region_len),
        "VAQ113",
        || {
            format!(
                "segment {s}: mapped {what} extent {}..+{} escapes the {}-byte file",
                span.offset, span.byte_len, span.region_len
            )
        },
    );
    r.check(span.aligned, "VAQ113", || {
        format!("segment {s}: mapped {what} extent at {} is not page aligned", span.offset)
    });
}

/// VAQ111: tombstone-bitmap sizing and accounting for one segment (or the
/// buffer, flagged as `seg == usize::MAX`).
fn audit_tombstones(r: &mut AuditReport, words: &[u64], dead: usize, n: usize, seg: usize) {
    let who = move || {
        if seg == usize::MAX {
            "buffer".to_string()
        } else {
            format!("segment {seg}")
        }
    };
    r.check(words.len() == n.div_ceil(64), "VAQ111", || {
        format!("{}: {} tombstone words for {n} rows", who(), words.len())
    });
    if !n.is_multiple_of(64) {
        if let Some(&lastw) = words.last() {
            r.check(lastw >> (n % 64) == 0, "VAQ111", || {
                format!("{}: tombstone bits set past row {n}", who())
            });
        }
    }
    let popcount: usize = words.iter().map(|w| w.count_ones() as usize).sum();
    r.check(popcount == dead && dead <= n, "VAQ111", || {
        format!("{}: {popcount} tombstone bits set, dead counter says {dead} of {n}", who())
    });
}

/// VAQ110: blocked-packing consistency with the flat code array.
fn audit_packed(
    r: &mut AuditReport,
    packed: &vaq_linalg::PackedCodes,
    codes: &[u16],
    n: usize,
    encoder: &Encoder,
) {
    let m = encoder.num_subspaces();
    if !packed.is_active() {
        // An inactive packing is valid only when packing genuinely has
        // nothing to do (no ≤8-bit subspace, too many of them, or codes
        // the packer refused). Re-running the packer detects a packing
        // that was dropped when it should exist.
        let expect =
            vaq_linalg::PackedCodes::pack(codes, &encoder.table_sizes().collect::<Vec<_>>(), n);
        r.check(!expect.is_active(), "VAQ110", || {
            "packed codes missing although the plan has packable subspaces".into()
        });
        return;
    }
    r.check(packed.len() == n, "VAQ110", || {
        format!("packed codes cover {} of {n} vectors", packed.len())
    });
    r.check(packed.num_total_subspaces() == m, "VAQ110", || {
        format!("packed codes built for {} of {m} subspaces", packed.num_total_subspaces())
    });
    if packed.len() != n || packed.num_total_subspaces() != m || codes.len() != n * m {
        return;
    }
    let nr = packed.num_rows();
    let block = vaq_linalg::qtables::BLOCK;
    // Walk the physical row layout: a `Pair` row carries two 4-bit codes
    // per byte (lo nibble = first subspace, hi nibble = second), a
    // `Single` row one full byte.
    for (i, row) in codes.chunks_exact(m).enumerate() {
        let (b, lane) = (i / block, i % block);
        for (ri, &prow) in packed.packed_rows().iter().enumerate() {
            let got = packed.data()[(b * nr + ri) * block + lane];
            let lanes: [(usize, u16); 2] = match prow {
                vaq_linalg::PackedRow::Pair { lo, hi } => {
                    [(lo, u16::from(got & 0x0f)), (hi, u16::from(got >> 4))]
                }
                vaq_linalg::PackedRow::Single(j) => [(j, u16::from(got)), (j, u16::from(got))],
            };
            for (j, decoded) in lanes {
                let s = packed.subspaces()[j];
                if decoded != row[s] {
                    r.push(
                        "VAQ110",
                        format!(
                            "packed byte for vector {i} subspace {s} decodes to {decoded}, \
                             codes say {}",
                            row[s]
                        ),
                    );
                    // One divergent byte is enough signal.
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_dataset::SyntheticSpec;

    fn trained() -> Vaq {
        let ds = SyntheticSpec::sift_like().generate(300, 0, 11);
        let cfg = VaqConfig::new(40, 8).with_ti_clusters(12).with_seed(5);
        Vaq::train(&ds.data, &cfg).unwrap()
    }

    #[test]
    fn trained_index_is_clean() {
        let vaq = trained();
        let report = vaq.audit();
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn corrupted_code_is_vaq106() {
        let mut vaq = trained();
        // Force a code past its dictionary: subspace 0's codebook has at
        // most 2^13 rows, u16::MAX is always out of range.
        vaq.codes[0] = u16::MAX;
        let report = vaq.audit();
        assert!(report.has_code("VAQ106"), "{report}");
    }

    #[test]
    fn truncated_codes_are_vaq106() {
        let mut vaq = trained();
        vaq.codes.pop();
        let report = vaq.audit();
        assert!(report.has_code("VAQ106"), "{report}");
    }

    #[test]
    fn stale_packing_content_is_vaq110() {
        let mut vaq = trained();
        assert!(vaq.packed.is_active(), "40-bit/8-subspace plan must pack");
        // Mutate one code *within* its dictionary range without
        // re-packing: VAQ106 stays clean, but the packed bytes now lie.
        let rows = vaq.encoder.codebooks()[0].rows() as u16;
        vaq.codes[0] = (vaq.codes[0] + 1) % rows;
        let report = vaq.audit();
        assert!(report.has_code("VAQ110"), "{report}");
        assert!(!report.has_code("VAQ106"), "{report}");
    }

    #[test]
    fn short_packing_is_vaq110() {
        let mut vaq = trained();
        let m = vaq.encoder.num_subspaces();
        let sizes: Vec<usize> = vaq.encoder.table_sizes().collect();
        // A packing built over a truncated database.
        vaq.packed =
            vaq_linalg::PackedCodes::pack(&vaq.codes[..(vaq.n - 1) * m], &sizes, vaq.n - 1);
        let report = vaq.audit();
        assert!(report.has_code("VAQ110"), "{report}");
    }

    #[test]
    fn missing_packing_is_vaq110() {
        let mut vaq = trained();
        vaq.packed = vaq_linalg::PackedCodes::default();
        let report = vaq.audit();
        assert!(report.has_code("VAQ110"), "{report}");
    }

    #[test]
    fn unsorted_ti_cluster_is_vaq108() {
        let mut vaq = trained();
        let ti = vaq.ti.as_mut().unwrap();
        let c = (0..ti.num_clusters())
            .find(|&c| ti.cluster_len(c) >= 2)
            .expect("some cluster has two members");
        let (start, end) = ti.cluster_range(c);
        ti.member_dist.to_mut()[start..end].reverse();
        ti.member_idx.to_mut()[start..end].reverse();
        let dists = ti.cluster_dist(c);
        let all_equal = dists.windows(2).all(|w| w[0] == w[1]);
        if !all_equal {
            let report = vaq.audit();
            assert!(report.has_code("VAQ108"), "{report}");
        }
    }

    #[test]
    fn duplicated_ti_member_is_vaq108() {
        let mut vaq = trained();
        let ti = vaq.ti.as_mut().unwrap();
        let first = ti.member_idx.as_slice()[0];
        for c in 0..ti.num_clusters() {
            if !ti.cluster_idx(c).contains(&first) {
                let end = ti.cluster_range(c).1;
                ti.member_idx.to_mut().insert(end, first);
                ti.member_dist.to_mut().insert(end, f32::MAX);
                for o in ti.offsets[c + 1..].iter_mut() {
                    *o += 1;
                }
                break;
            }
        }
        let report = vaq.audit();
        assert!(report.has_code("VAQ108"), "{report}");
    }

    #[test]
    fn off_budget_bits_are_vaq103() {
        let ds = SyntheticSpec::sald_like().generate(200, 0, 3);
        let cfg = VaqConfig::new(32, 8).with_ti_clusters(0);
        let mut plan = crate::pipeline::VarPcaStage::compute(&ds.data, &cfg)
            .unwrap()
            .plan_subspaces(&cfg)
            .unwrap()
            .allocate_bits(&cfg)
            .unwrap();
        assert!(plan.audit_constraints(&cfg).is_ok());
        plan.bits[0] += 1;
        let report = plan.audit_constraints(&cfg);
        assert!(report.has_code("VAQ103"), "{report}");
    }

    #[test]
    fn zero_bit_subspace_is_vaq101() {
        let ds = SyntheticSpec::sald_like().generate(200, 0, 3);
        let cfg = VaqConfig::new(32, 8).with_ti_clusters(0);
        let mut plan = crate::pipeline::VarPcaStage::compute(&ds.data, &cfg)
            .unwrap()
            .plan_subspaces(&cfg)
            .unwrap()
            .allocate_bits(&cfg)
            .unwrap();
        plan.bits[3] = 0;
        let report = plan.audit();
        assert!(report.has_code("VAQ101"), "{report}");
    }

    #[test]
    fn broken_importance_order_is_vaq104() {
        let vaq = trained();
        let mut layout = vaq.layout.clone();
        layout.variance_share.reverse();
        let report = layout.audit();
        assert!(report.has_code("VAQ104"), "{report}");
    }

    #[test]
    fn truncated_arena_is_vaq107() {
        let vaq = trained();
        // An arena shaped for one table too few (and the wrong sizes).
        let sizes: Vec<usize> = vaq.encoder().table_sizes().collect();
        let arena = TableArena::with_layout(&sizes[..sizes.len() - 1]);
        let report = vaq.encoder().audit_tables(&arena);
        assert!(report.has_code("VAQ107"), "{report}");
    }

    #[test]
    fn segmented_index_is_clean_and_vaq111_catches_structure_breaks() {
        use crate::segment::{SegmentPolicy, SegmentedVaq};
        let ds = SyntheticSpec::sift_like().generate(200, 0, 19);
        let policy =
            SegmentPolicy::default().with_seal_threshold(40).with_ti_clusters(4).sequential();
        let cfg = VaqConfig::new(40, 8).with_ti_clusters(12).with_seed(5);
        let seg = SegmentedVaq::train(&ds.data, &cfg, policy).unwrap();
        let extra = SyntheticSpec::sift_like().generate(90, 0, 20);
        seg.add(&extra.data).unwrap();
        seg.delete(3);
        seg.flush();
        let report = seg.audit();
        assert!(report.is_ok(), "{report}");
        assert!(seg.snapshot().num_segments() >= 2, "want sealed segments to audit");
    }

    #[test]
    fn tombstone_accounting_breaks_are_vaq111() {
        let mut r = AuditReport::new();
        // 70 rows → two words; dead counter disagrees with the popcount.
        super::audit_tombstones(&mut r, &[0b1011, 0], 2, 70, 0);
        assert!(r.has_code("VAQ111"), "{r}");

        // Bits set past the row count (row 70 lives in word 1, bit 6).
        let mut r = AuditReport::new();
        super::audit_tombstones(&mut r, &[0, 1u64 << 40], 1, 70, 0);
        assert!(r.has_code("VAQ111"), "{r}");

        // Wrong word count for the row count.
        let mut r = AuditReport::new();
        super::audit_tombstones(&mut r, &[0], 0, 70, usize::MAX);
        assert!(r.has_code("VAQ111"), "{r}");

        // Clean bitmap passes.
        let mut r = AuditReport::new();
        super::audit_tombstones(&mut r, &[0b101, 0], 2, 70, 0);
        assert!(r.is_ok(), "{r}");
    }

    #[test]
    fn display_lists_every_issue() {
        let mut r = AuditReport::new();
        r.push("VAQ101", "first".into());
        r.push("VAQ108", "second".into());
        let text = r.to_string();
        assert!(text.contains("VAQ101: first") && text.contains("VAQ108: second"));
    }

    mod properties {
        use super::*;
        use crate::sync::OnceLock;
        use proptest::prelude::*;

        /// One clean index shared across cases (training is deterministic;
        /// each case clones before corrupting).
        fn shared() -> &'static Vaq {
            static CELL: OnceLock<Vaq> = OnceLock::new();
            CELL.get_or_init(trained)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Any single corrupted code cell is caught as VAQ106,
            /// regardless of where it lands.
            #[test]
            fn any_corrupted_code_is_vaq106(pos_seed in 0usize..10_000) {
                let mut vaq = shared().clone();
                let pos = pos_seed % vaq.codes.len();
                vaq.codes[pos] = u16::MAX;
                let report = vaq.audit();
                prop_assert!(report.has_code("VAQ106"), "{report}");
            }

            /// Any truncation of the codes buffer is caught as VAQ106.
            #[test]
            fn any_truncated_codes_are_vaq106(cut_seed in 1usize..10_000) {
                let mut vaq = shared().clone();
                let cut = 1 + cut_seed % (vaq.codes.len() - 1);
                vaq.codes.truncate(vaq.codes.len() - cut);
                let report = vaq.audit();
                prop_assert!(report.has_code("VAQ106"), "{report}");
            }

            /// Any arena truncated below the encoder's table layout is
            /// caught as VAQ107.
            #[test]
            fn any_truncated_arena_is_vaq107(drop_seed in 1usize..10_000) {
                let vaq = shared();
                let sizes: Vec<usize> = vaq.encoder().table_sizes().collect();
                let keep = sizes.len() - 1 - (drop_seed % (sizes.len() - 1));
                let arena = TableArena::with_layout(&sizes[..keep]);
                let report = vaq.encoder().audit_tables(&arena);
                prop_assert!(report.has_code("VAQ107"), "{report}");
            }
        }
    }
}
