//! Binary persistence for trained [`Vaq`] indexes.
//!
//! A trained index is expensive (dictionary learning dominates, as the
//! paper's encoding-time measurements show), so a downstream system wants
//! to train once and serve many times. The format is a small versioned
//! little-endian binary layout built with [`bytes`]:
//!
//! ```text
//! magic "VAQ1" | version u32 |
//! pca:    mean [f32] | components rows/cols + [f32] | eigenvalues [f64]
//! layout: perm [u64] | ranges [(u64,u64)] | shares [f64] | pc_share [f64]
//! bits:   [u64]
//! encoder: per-subspace codebook matrices
//! codes:  n u64 | m u64 | [u16]
//! ti:     present flag | centroids | clusters [(idx u32, dist f32)] | prefix
//! default strategy tag + payload
//! ```
//!
//! Everything is validated on load; a truncated or corrupted file returns
//! [`VaqError::BadConfig`] rather than panicking.

use crate::encoder::Encoder;
use crate::search::SearchStrategy;
use crate::subspaces::SubspaceLayout;
use crate::ti::{Member, TiPartition};
use crate::vaq::Vaq;
use crate::VaqError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::Path;
use vaq_linalg::{Matrix, PackedCodes, Pca};

const MAGIC: &[u8; 4] = b"VAQ1";
const VERSION: u32 = 1;

impl Vaq {
    /// Serializes the trained index to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(1024 + self.codes.len() * 2);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);

        // PCA.
        put_f32_slice(&mut buf, self.pca.mean());
        put_matrix(&mut buf, self.pca.components());
        put_f64_slice(&mut buf, self.pca.eigenvalues());

        // Layout.
        put_usize_slice(&mut buf, &self.layout.perm);
        buf.put_u64_le(self.layout.ranges.len() as u64);
        for &(lo, hi) in &self.layout.ranges {
            buf.put_u64_le(lo as u64);
            buf.put_u64_le(hi as u64);
        }
        put_f64_slice(&mut buf, &self.layout.variance_share);
        put_f64_slice(&mut buf, &self.layout.pc_share);

        // Bits.
        put_usize_slice(&mut buf, &self.bits);

        // Encoder codebooks (bits/ranges are shared with the layout).
        buf.put_u64_le(self.encoder.codebooks.len() as u64);
        for cb in &self.encoder.codebooks {
            put_matrix(&mut buf, cb);
        }

        // Codes.
        buf.put_u64_le(self.n as u64);
        buf.put_u64_le(self.encoder.num_subspaces() as u64);
        for &c in &self.codes {
            buf.put_u16_le(c);
        }

        // TI partition.
        match &self.ti {
            None => buf.put_u8(0),
            Some(ti) => {
                buf.put_u8(1);
                put_matrix(&mut buf, &ti.centroids);
                buf.put_u64_le(ti.clusters.len() as u64);
                for cl in &ti.clusters {
                    buf.put_u64_le(cl.len() as u64);
                    for m in cl {
                        buf.put_u32_le(m.idx);
                        buf.put_f32_le(m.dist);
                    }
                }
                buf.put_u64_le(ti.prefix_subspaces as u64);
                buf.put_u64_le(ti.prefix_dim as u64);
            }
        }

        // Default strategy.
        match self.default_strategy {
            SearchStrategy::FullScan => buf.put_u8(0),
            SearchStrategy::EarlyAbandon => buf.put_u8(1),
            SearchStrategy::TiEa { visit_frac } => {
                buf.put_u8(2);
                buf.put_f64_le(visit_frac);
            }
            SearchStrategy::Quantized => buf.put_u8(3),
        }
        buf.to_vec()
    }

    /// Deserializes an index previously produced by [`Vaq::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Vaq, VaqError> {
        if crate::faults::fired("persist.from_bytes") {
            return Err(VaqError::Injected { site: "persist.from_bytes" });
        }
        let mut buf = Bytes::copy_from_slice(data);
        let bad = |msg: &str| VaqError::BadConfig(format!("corrupt index file: {msg}"));

        let mut magic = [0u8; 4];
        take(&mut buf, 4)?.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(bad("bad magic"));
        }
        let version = take(&mut buf, 4)?.get_u32_le();
        if version != VERSION {
            return Err(bad(&format!("unsupported version {version}")));
        }

        let mean = get_f32_slice(&mut buf)?;
        let components = get_matrix(&mut buf)?;
        let eigenvalues = get_f64_slice(&mut buf)?;
        if mean.len() != components.rows() || eigenvalues.len() != components.cols() {
            return Err(bad("pca shape mismatch"));
        }
        let pca = Pca::from_parts(mean, components, eigenvalues);

        let perm = get_usize_slice(&mut buf)?;
        let nranges = take(&mut buf, 8)?.get_u64_le() as usize;
        if nranges > perm.len().max(1) {
            return Err(bad("too many subspace ranges"));
        }
        let mut ranges = Vec::with_capacity(nranges);
        for _ in 0..nranges {
            let lo = take(&mut buf, 8)?.get_u64_le() as usize;
            let hi = take(&mut buf, 8)?.get_u64_le() as usize;
            if lo > hi || hi > perm.len() {
                return Err(bad("invalid subspace range"));
            }
            ranges.push((lo, hi));
        }
        let variance_share = get_f64_slice(&mut buf)?;
        let pc_share = get_f64_slice(&mut buf)?;
        if variance_share.len() != nranges || pc_share.len() != perm.len() {
            return Err(bad("layout share lengths"));
        }
        let layout = SubspaceLayout { perm, ranges: ranges.clone(), variance_share, pc_share };

        let bits = get_usize_slice(&mut buf)?;
        if bits.len() != nranges {
            return Err(bad("bits/subspace count mismatch"));
        }

        let ncb = take(&mut buf, 8)?.get_u64_le() as usize;
        if ncb != nranges {
            return Err(bad("codebook count mismatch"));
        }
        let mut codebooks = Vec::with_capacity(ncb);
        for (s, &(lo, hi)) in ranges.iter().enumerate() {
            let cb = get_matrix(&mut buf)?;
            if cb.cols() != hi - lo {
                return Err(bad(&format!("codebook {s} width mismatch")));
            }
            if cb.rows() > 1usize << bits[s] {
                return Err(bad(&format!("codebook {s} larger than its bit width")));
            }
            codebooks.push(cb);
        }
        let encoder = Encoder { codebooks, bits: bits.clone(), ranges };

        let n = take(&mut buf, 8)?.get_u64_le() as usize;
        let m = take(&mut buf, 8)?.get_u64_le() as usize;
        if m != nranges {
            return Err(bad("code width mismatch"));
        }
        let total = n.checked_mul(m).ok_or_else(|| bad("code size overflow"))?;
        let nbytes = total.checked_mul(2).ok_or_else(|| bad("code size overflow"))?;
        // Take the bytes *before* allocating: the header is untrusted, and
        // a fabricated count must fail the length check, not reserve memory.
        let mut code_bytes = take(&mut buf, nbytes)?;
        let mut codes = Vec::with_capacity(total);
        for _ in 0..total {
            codes.push(code_bytes.get_u16_le());
        }
        for (i, &c) in codes.iter().enumerate() {
            let s = i % m;
            if c as usize >= encoder.codebooks[s].rows() {
                return Err(bad("code exceeds dictionary size"));
            }
        }

        let ti = match take(&mut buf, 1)?.get_u8() {
            0 => None,
            1 => {
                let centroids = get_matrix(&mut buf)?;
                let ncl = take(&mut buf, 8)?.get_u64_le() as usize;
                if ncl != centroids.rows() {
                    return Err(bad("TI cluster count mismatch"));
                }
                // More clusters than vectors is never produced by training
                // (and would let a zero-width centroid matrix request an
                // enormous cluster table).
                if ncl > n {
                    return Err(bad("TI cluster count exceeds database size"));
                }
                let mut clusters = Vec::with_capacity(ncl);
                let mut members_total = 0usize;
                for _ in 0..ncl {
                    let len = take(&mut buf, 8)?.get_u64_le() as usize;
                    members_total =
                        members_total.checked_add(len).ok_or_else(|| bad("TI member overflow"))?;
                    if members_total > n {
                        return Err(bad("TI clusters exceed database size"));
                    }
                    let mut cl = Vec::with_capacity(len);
                    for _ in 0..len {
                        let idx = take(&mut buf, 4)?.get_u32_le();
                        let dist = take(&mut buf, 4)?.get_f32_le();
                        if idx as usize >= n {
                            return Err(bad("TI member out of range"));
                        }
                        cl.push(Member { idx, dist });
                    }
                    clusters.push(cl);
                }
                if members_total != n {
                    return Err(bad("TI clusters do not partition the database"));
                }
                let prefix_subspaces = take(&mut buf, 8)?.get_u64_le() as usize;
                let prefix_dim = take(&mut buf, 8)?.get_u64_le() as usize;
                Some(TiPartition { centroids, clusters, prefix_subspaces, prefix_dim })
            }
            _ => return Err(bad("bad TI flag")),
        };

        let default_strategy = match take(&mut buf, 1)?.get_u8() {
            0 => SearchStrategy::FullScan,
            1 => SearchStrategy::EarlyAbandon,
            2 => SearchStrategy::TiEa { visit_frac: take(&mut buf, 8)?.get_f64_le() },
            3 => SearchStrategy::Quantized,
            _ => return Err(bad("bad strategy tag")),
        };

        // The blocked packing is derived state (codes were range-checked
        // above, and the full audit below re-verifies them against the
        // dictionaries), so it is rebuilt rather than serialized — the
        // on-disk format is unchanged.
        let packed = PackedCodes::pack(&codes, &encoder.table_sizes().collect::<Vec<_>>(), n);
        let vaq = Vaq { pca, layout, bits, encoder, codes, n, ti, default_strategy, packed };
        // The file is untrusted input: a payload can parse field-by-field
        // yet still violate the index's structural invariants (bit budget,
        // TI ordering, ...). Run the full audit and fail loud — in every
        // build profile, not just debug.
        let report = crate::audit::Audit::audit(&vaq);
        if !report.is_ok() {
            return Err(bad(&format!(
                "audit found {} invariant violation(s) after load",
                report.issues().len()
            )));
        }
        Ok(vaq)
    }

    /// Writes the index to a file.
    pub fn save(&self, path: &Path) -> Result<(), VaqError> {
        std::fs::write(path, self.to_bytes())
            .map_err(|e| VaqError::BadConfig(format!("write {}: {e}", path.display())))
    }

    /// Loads an index from a file.
    pub fn load(path: &Path) -> Result<Vaq, VaqError> {
        let data = std::fs::read(path)
            .map_err(|e| VaqError::BadConfig(format!("read {}: {e}", path.display())))?;
        Vaq::from_bytes(&data)
    }
}

fn take(buf: &mut Bytes, n: usize) -> Result<Bytes, VaqError> {
    if buf.remaining() < n {
        return Err(VaqError::BadConfig("corrupt index file: truncated".into()));
    }
    Ok(buf.split_to(n))
}

/// `count * elem_size` with overflow reported as corruption — every length
/// in the file is attacker-controlled, so no size math may wrap.
fn checked_size(count: usize, elem_size: usize) -> Result<usize, VaqError> {
    count
        .checked_mul(elem_size)
        .ok_or_else(|| VaqError::BadConfig("corrupt index file: length overflow".into()))
}

fn put_matrix(buf: &mut BytesMut, m: &Matrix) {
    buf.put_u64_le(m.rows() as u64);
    buf.put_u64_le(m.cols() as u64);
    for &v in m.as_slice() {
        buf.put_f32_le(v);
    }
}

fn get_matrix(buf: &mut Bytes) -> Result<Matrix, VaqError> {
    let rows = take(buf, 8)?.get_u64_le() as usize;
    let cols = take(buf, 8)?.get_u64_le() as usize;
    let total = rows
        .checked_mul(cols)
        .filter(|&t| t <= 1 << 32)
        .ok_or_else(|| VaqError::BadConfig("corrupt index file: matrix too large".into()))?;
    // Bytes first, allocation second: the dimensions are untrusted.
    let mut bytes = take(buf, checked_size(total, 4)?)?;
    let mut data = Vec::with_capacity(total);
    for _ in 0..total {
        data.push(bytes.get_f32_le());
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

fn put_f32_slice(buf: &mut BytesMut, s: &[f32]) {
    buf.put_u64_le(s.len() as u64);
    for &v in s {
        buf.put_f32_le(v);
    }
}

fn get_f32_slice(buf: &mut Bytes) -> Result<Vec<f32>, VaqError> {
    let len = take(buf, 8)?.get_u64_le() as usize;
    let mut bytes = take(buf, checked_size(len, 4)?)?;
    Ok((0..len).map(|_| bytes.get_f32_le()).collect())
}

fn put_f64_slice(buf: &mut BytesMut, s: &[f64]) {
    buf.put_u64_le(s.len() as u64);
    for &v in s {
        buf.put_f64_le(v);
    }
}

fn get_f64_slice(buf: &mut Bytes) -> Result<Vec<f64>, VaqError> {
    let len = take(buf, 8)?.get_u64_le() as usize;
    let mut bytes = take(buf, checked_size(len, 8)?)?;
    Ok((0..len).map(|_| bytes.get_f64_le()).collect())
}

fn put_usize_slice(buf: &mut BytesMut, s: &[usize]) {
    buf.put_u64_le(s.len() as u64);
    for &v in s {
        buf.put_u64_le(v as u64);
    }
}

fn get_usize_slice(buf: &mut Bytes) -> Result<Vec<usize>, VaqError> {
    let len = take(buf, 8)?.get_u64_le() as usize;
    let mut bytes = take(buf, checked_size(len, 8)?)?;
    Ok((0..len).map(|_| bytes.get_u64_le() as usize).collect())
}

#[cfg(test)]
mod tests {
    use crate::{SearchStrategy, Vaq, VaqConfig};
    use vaq_linalg::Matrix;

    fn toy_data(n: usize) -> Matrix {
        let mut s = 77u64;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(16);
            for j in 0..16 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = ((s >> 40) as f32 / (1u32 << 23) as f32) - 1.0;
                row.push(v * 2.0 / (1.0 + j as f32 * 0.3));
            }
            rows.push(row);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn round_trip_preserves_search_results() {
        let data = toy_data(400);
        let vaq = Vaq::train(&data, &VaqConfig::new(24, 4).with_ti_clusters(16)).unwrap();
        let bytes = vaq.to_bytes();
        let back = Vaq::from_bytes(&bytes).unwrap();
        assert_eq!(back.bits(), vaq.bits());
        assert_eq!(back.len(), vaq.len());
        for i in (0..400).step_by(37) {
            let a = vaq.search(data.row(i), 7);
            let b = back.search(data.row(i), 7);
            assert_eq!(a, b, "row {i}");
            for strat in [
                SearchStrategy::FullScan,
                SearchStrategy::EarlyAbandon,
                SearchStrategy::TiEa { visit_frac: 0.5 },
            ] {
                assert_eq!(
                    vaq.search_with(data.row(i), 5, strat).0,
                    back.search_with(data.row(i), 5, strat).0
                );
            }
        }
    }

    #[test]
    fn round_trip_without_ti_partition() {
        let data = toy_data(120);
        let vaq = Vaq::train(&data, &VaqConfig::new(16, 4).with_ti_clusters(0)).unwrap();
        let back = Vaq::from_bytes(&vaq.to_bytes()).unwrap();
        assert!(back.ti().is_none());
        assert_eq!(vaq.search(data.row(3), 5), back.search(data.row(3), 5));
    }

    #[test]
    fn save_load_file() {
        let data = toy_data(150);
        let vaq = Vaq::train(&data, &VaqConfig::new(16, 4).with_ti_clusters(8)).unwrap();
        let dir = std::env::temp_dir().join("vaq-persist-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.vaq");
        vaq.save(&path).unwrap();
        let back = Vaq::load(&path).unwrap();
        assert_eq!(vaq.search(data.row(0), 3), back.search(data.row(0), 3));
    }

    #[test]
    fn rejects_corrupted_files() {
        let data = toy_data(100);
        let vaq = Vaq::train(&data, &VaqConfig::new(16, 4).with_ti_clusters(8)).unwrap();
        let mut bytes = vaq.to_bytes();

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(Vaq::from_bytes(&bad).is_err());

        // Truncation at every 97th byte must error, never panic.
        let mut at = 5;
        while at < bytes.len() {
            assert!(Vaq::from_bytes(&bytes[..at]).is_err(), "truncated at {at}");
            at += 97;
        }

        // Flipping a code to an out-of-dictionary value must be caught.
        // (Codes sit after the header; find a u16 region by corrupting the
        // tail region before the TI flag — easiest robust check: flip all
        // bytes, which cannot parse cleanly.)
        for b in bytes.iter_mut() {
            *b = b.wrapping_add(13);
        }
        assert!(Vaq::from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_byte_patched_oversized_code() {
        let data = toy_data(100);
        let mut vaq = Vaq::train(&data, &VaqConfig::new(16, 4).with_ti_clusters(8)).unwrap();
        let mut clean = vaq.to_bytes();

        // Locate `codes[0]` in the stream without hard-coding the layout:
        // re-serialize with that code nudged to a different in-range value
        // and diff. The first differing byte is the low byte of its LE u16.
        let rows = vaq.encoder.codebooks()[0].rows() as u16;
        vaq.codes[0] = (vaq.codes[0] + 1) % rows;
        let nudged = vaq.to_bytes();
        let off = clean.iter().zip(&nudged).position(|(a, b)| a != b).unwrap();

        // Patch the clean file so the code points past every dictionary.
        clean[off] = 0xff;
        clean[off + 1] = 0xff;
        match Vaq::from_bytes(&clean).unwrap_err() {
            crate::VaqError::BadConfig(msg) => {
                assert!(msg.contains("code exceeds dictionary size"), "{msg}");
            }
            other => panic!("expected BadConfig, got {other:?}"),
        }
    }

    #[test]
    fn quantized_default_strategy_round_trips() {
        let data = toy_data(200);
        let mut vaq = Vaq::train(&data, &VaqConfig::new(24, 4).with_ti_clusters(8)).unwrap();
        vaq.default_strategy = SearchStrategy::Quantized;
        let back = Vaq::from_bytes(&vaq.to_bytes()).unwrap();
        assert_eq!(back.default_strategy, SearchStrategy::Quantized);
        assert!(back.packed.is_active(), "packing must be rebuilt on load");
        for i in (0..200).step_by(41) {
            assert_eq!(vaq.search(data.row(i), 5), back.search(data.row(i), 5), "row {i}");
        }
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(Vaq::load(std::path::Path::new("/nonexistent/vaq.idx")).is_err());
    }
}
