//! Binary persistence for trained [`Vaq`] and [`SegmentedVaq`] indexes:
//! checksummed manifests, atomic commits, and typed IO errors.
//!
//! A trained index is expensive (dictionary learning dominates, as the
//! paper's encoding-time measurements show), so a downstream system wants
//! to train once and serve many times. Three versioned little-endian
//! binary layouts share one vocabulary of fields, built with [`bytes`]:
//!
//! ```text
//! -- monolithic index, magic "VAQ1" --
//! magic "VAQ1" | version u32 |
//! pca:    mean [f32] | components rows/cols + [f32] | eigenvalues [f64]
//! layout: perm [u64] | ranges [(u64,u64)] | shares [f64] | pc_share [f64]
//! bits:   [u64]
//! encoder: per-subspace codebook matrices
//! codes:  n u64 | m u64 | [u16]
//! ti:     present flag | centroids | clusters [(idx u32, dist f32)] | prefix
//! default strategy tag + payload
//!
//! -- segmented index, magic "VAQ2" --
//! magic "VAQ2" | version u32 |
//! model:  pca | layout | bits | codebooks | strategy |
//!         ti_prefix_subspaces u64 | seed u64
//! policy: seal_threshold u64 | compact_min_segments u64 |
//!         tombstone_purge_frac f64 | ti_clusters u64 | background u8
//! next_id u32 | segment count u64
//! per segment: n u64 | ids [u32] | codes [u16] |
//!              dead u64 | tombstone words [u64] | ti flag + payload
//! buffer: rows u64 | ids [u32] | codes [u16] | dead u64 | words [u64]
//!
//! -- checksummed manifest container, magic "VAQ3" --
//! header: magic "VAQ3" | version u32 | kind u8 (1=monolithic, 2=segmented) |
//!         wal_seq u64 | extent count u64 | header crc32c u32
//! per extent: len u64 | crc32c u32 | payload[len]
//! kind 1: one extent holding a complete VAQ1 stream
//! kind 2: extent 0 = model + policy + next_id, one extent per sealed
//!         segment, final extent = write buffer
//! ```
//!
//! `VAQ3` is what [`Vaq::save`] / [`SegmentedVaq::save`] write: the
//! header and **every extent** carry a CRC32C ([`crate::crc`], in-tree),
//! verified before a single field is parsed, so a torn or bit-flipped
//! region is reported as corruption instead of being interpreted. The
//! `wal_seq` header field records the last write-ahead-log sequence
//! number baked into the snapshot (see `crate::segment::wal`); plain
//! `save` writes 0.
//!
//! Saves are **atomic**: the bytes go to `<path>.tmp`, the file and its
//! parent directory are fsynced, and the tmp is renamed over the target —
//! a crash at any point (exercised by the `persist.commit` /
//! `persist.fsync` fault sites and `vaq_cli crash`) leaves either the old
//! complete file or the new complete file, never a torn mix.
//!
//! [`SegmentedVaq::from_bytes`] accepts all three formats: a `VAQ1` file
//! loads as a segmented index whose whole database is one sealed segment,
//! with byte-identical search behaviour, and `VAQ2` files load unchanged.
//!
//! Everything is validated on load (checksums first, field-level checks
//! second, the full structural audit afterwards); a truncated or
//! corrupted file returns [`VaqError::BadConfig`] and a failed filesystem
//! operation returns [`VaqError::Io`] with its `source()` chain intact —
//! never a panic.

use crate::encoder::Encoder;
use crate::search::SearchStrategy;
use crate::segment::{
    Buffer, Model, Segment, SegmentCore, SegmentPolicy, SegmentSet, SegmentedVaq, Tombstones,
};
use crate::subspaces::SubspaceLayout;
use crate::sync::atomic::{AtomicU8, Ordering};
use crate::sync::Arc;
use crate::ti::TiPartition;
use crate::vaq::Vaq;
use crate::VaqError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::{Path, PathBuf};
use vaq_linalg::{
    CodesStorage, ExtentSpan, F32Storage, MappedRegion, Matrix, PackedCodes, Pca, ScanPrefetch,
    U16Storage, U32Storage, U64Storage, PAGE_ALIGN,
};

const MAGIC: &[u8; 4] = b"VAQ1";
const VERSION: u32 = 1;
const MAGIC2: &[u8; 4] = b"VAQ2";
const VERSION2: u32 = 1;
const MAGIC3: &[u8; 4] = b"VAQ3";
const VERSION3: u32 = 1;
/// Page-aligned out-of-core container (see the `VAQ4` section below).
const MAGIC4: &[u8; 4] = b"VAQ4";
const VERSION4: u32 = 1;
/// Extents per sealed segment in a `VAQ4` file: meta, ids, codes, packed,
/// tombstone words, TI member ids, TI member distances.
const SEG_EXTENTS: usize = 7;
/// Bytes per `VAQ4` extent-table entry: offset `u64` + length `u64` +
/// CRC32C `u32`.
const VAQ4_TABLE_ENTRY: usize = 8 + 8 + 4;
/// `VAQ3` payload kinds.
const KIND_MONOLITHIC: u8 = 1;
const KIND_SEGMENTED: u8 = 2;
/// Bytes of the `VAQ3` header covered by the header CRC (everything
/// before the CRC field itself).
const HEADER_CRC_SPAN: usize = 4 + 4 + 1 + 8 + 8;

// ---------------------------------------------------------------------------
// Atomic commit: tmp → fsync → rename → fsync(dir)
// ---------------------------------------------------------------------------

/// `<path>.tmp` — the staging file of an atomic commit. Loaders ignore
/// it; a stale one (from an interrupted save) is silently replaced by the
/// next commit.
pub(crate) fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Wraps a real filesystem failure at `path`.
pub(crate) fn io_at(path: &Path, e: std::io::Error) -> VaqError {
    VaqError::io(path, e)
}

/// The typed error for an IO operation abandoned by a simulated power
/// loss (or a probabilistically injected transient failure) at `site`.
pub(crate) fn abandoned(path: &Path, site: &'static str) -> VaqError {
    VaqError::io(path, std::io::Error::other(format!("injected io failure at `{site}`")))
}

/// Fsyncs an open file, gated by the `persist.fsync` fault site. Under
/// Miri the sync itself is skipped (no fsync shim); the fault gate and
/// error paths still run.
pub(crate) fn fsync_file(f: &std::fs::File, path: &Path) -> Result<(), VaqError> {
    if crate::faults::fired("persist.fsync") {
        return Err(abandoned(path, "persist.fsync"));
    }
    #[cfg(not(miri))]
    f.sync_all().map_err(|e| io_at(path, e))?;
    #[cfg(miri)]
    let _ = f;
    Ok(())
}

/// Fsyncs a directory so a just-committed rename survives power loss.
/// Directory handles are only syncable on unix; elsewhere the rename is
/// as durable as the platform makes it.
fn fsync_dir(dir: &Path) -> Result<(), VaqError> {
    if crate::faults::fired("persist.fsync") {
        return Err(abandoned(dir, "persist.fsync"));
    }
    #[cfg(all(unix, not(miri)))]
    {
        let d = std::fs::File::open(dir).map_err(|e| io_at(dir, e))?;
        d.sync_all().map_err(|e| io_at(dir, e))?;
    }
    #[cfg(not(all(unix, not(miri))))]
    let _ = dir;
    Ok(())
}

/// Reads an index file with the container header validated *first*: the
/// 29-byte header is pulled in alone and checked — magic, checksum, and
/// the claimed extent count against the real file length — before the
/// body is read, so a corrupt or hostile header is rejected without a
/// file-sized read behind it. Legacy raw `VAQ1`/`VAQ2` streams carry no
/// checksummed header to pre-validate and are read whole, as before.
pub(crate) fn read_index_file(path: &Path) -> Result<Vec<u8>, VaqError> {
    use std::io::Read;
    let mut f = std::fs::File::open(path).map_err(|e| io_at(path, e))?;
    let flen = narrow(f.metadata().map_err(|e| io_at(path, e))?.len(), "file length")?;
    let mut head = [0u8; HEADER_CRC_SPAN + 4];
    let mut got = 0usize;
    while got < head.len() {
        match f.read(&mut head[got..]).map_err(|e| io_at(path, e))? {
            0 => break,
            k => got += k,
        }
    }
    check_header_against_len(&head[..got], flen)?;
    let mut data = Vec::with_capacity(flen.max(got));
    data.extend_from_slice(&head[..got]);
    f.read_to_end(&mut data).map_err(|e| io_at(path, e))?;
    Ok(data)
}

/// The header-vs-file-length precheck behind `read_index_file`. For
/// the checksummed containers this proves the claimed extent count could
/// at least *encode* within `flen` bytes (12 bytes of framing per `VAQ3`
/// extent, a 20-byte table entry per `VAQ4` extent), so a fabricated
/// count dies here instead of driving downstream allocations.
fn check_header_against_len(head: &[u8], flen: usize) -> Result<(), VaqError> {
    if head.len() < 4 {
        return Err(VaqError::BadConfig("corrupt index file: truncated".into()));
    }
    let magic = &head[..4];
    if magic == MAGIC.as_slice() || magic == MAGIC2.as_slice() {
        return Ok(());
    }
    let (per_extent, fixed_tail) = if magic == MAGIC3.as_slice() {
        (12usize, 0usize)
    } else if magic == MAGIC4.as_slice() {
        (VAQ4_TABLE_ENTRY, 4)
    } else {
        return Err(bad("unrecognized index file magic"));
    };
    if head.len() < HEADER_CRC_SPAN + 4 {
        return Err(VaqError::BadConfig("corrupt index file: truncated".into()));
    }
    let mut buf = Bytes::copy_from_slice(&head[4..HEADER_CRC_SPAN + 4]);
    let _version = buf.get_u32_le();
    let _kind = buf.get_u8();
    let _wal_seq = buf.get_u64_le();
    let nextents = buf.get_u64_le();
    let stored = buf.get_u32_le();
    if crate::crc::crc32c(&head[..HEADER_CRC_SPAN]) != stored {
        return Err(bad("manifest header checksum mismatch"));
    }
    let min_len = nextents
        .checked_mul(wide(per_extent))
        .and_then(|b| b.checked_add(wide(HEADER_CRC_SPAN + 4 + fixed_tail)))
        .ok_or_else(|| bad("extent count overflow"))?;
    if min_len > wide(flen) {
        return Err(bad("extent count larger than the file can hold"));
    }
    Ok(())
}

/// Atomically replaces `path` with `bytes`: write `<path>.tmp`, fsync it,
/// rename it over `path`, fsync the parent directory. A crash — real, or
/// injected through the `persist.commit` (tmp write, rename) and
/// `persist.fsync` (both syncs) fault sites — leaves either the old
/// complete file or the new complete file, never a torn mix; an injected
/// crash during the tmp write leaves a torn prefix *of the tmp only*, so
/// recovery tests see realistic debris.
pub(crate) fn commit_bytes(path: &Path, bytes: &[u8]) -> Result<(), VaqError> {
    use std::io::Write;
    let tmp = tmp_path(path);
    if crate::faults::fired("persist.commit") {
        // Simulated power loss mid-write: a torn prefix of the staging
        // file may have reached disk; the destination is untouched.
        let _ = std::fs::write(&tmp, &bytes[..bytes.len() / 2]);
        return Err(abandoned(&tmp, "persist.commit"));
    }
    let mut f = std::fs::File::create(&tmp).map_err(|e| io_at(&tmp, e))?;
    f.write_all(bytes).map_err(|e| io_at(&tmp, e))?;
    fsync_file(&f, &tmp)?;
    drop(f);
    if crate::faults::fired("persist.commit") {
        return Err(abandoned(path, "persist.commit"));
    }
    std::fs::rename(&tmp, path).map_err(|e| io_at(path, e))?;
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fsync_dir(parent)?;
    }
    crate::obs::counter_add("persist.commits", 1);
    Ok(())
}

// ---------------------------------------------------------------------------
// VAQ3 container framing
// ---------------------------------------------------------------------------

/// Frames `extents` as a `VAQ3` stream: checksummed header, then each
/// extent length-prefixed and carrying its own CRC32C.
fn vaq3_wrap(kind: u8, wal_seq: u64, extents: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = extents.iter().map(|e| e.len() + 12).sum();
    let mut buf = BytesMut::with_capacity(HEADER_CRC_SPAN + 4 + total);
    buf.put_slice(MAGIC3);
    buf.put_u32_le(VERSION3);
    buf.put_u8(kind);
    buf.put_u64_le(wal_seq);
    buf.put_u64_le(wide(extents.len()));
    let header_crc = crate::crc::crc32c(&buf);
    buf.put_u32_le(header_crc);
    for e in extents {
        buf.put_u64_le(wide(e.len()));
        buf.put_u32_le(crate::crc::crc32c(e));
        buf.put_slice(e);
    }
    buf.to_vec()
}

struct Vaq3Header {
    kind: u8,
    wal_seq: u64,
    nextents: usize,
}

/// Parses and verifies the `VAQ3` header. `buf` must be positioned right
/// after the magic; `data` is the whole stream (for the header CRC).
fn get_vaq3_header(buf: &mut Bytes, data: &[u8]) -> Result<Vaq3Header, VaqError> {
    let version = take(buf, 4)?.get_u32_le();
    if version != VERSION3 {
        return Err(bad(&format!("unsupported manifest version {version}")));
    }
    let kind = take(buf, 1)?.get_u8();
    let wal_seq = take(buf, 8)?.get_u64_le();
    let nextents = take_len(buf, "extent count")?;
    let stored = take(buf, 4)?.get_u32_le();
    // `take` above guarantees the span exists.
    if crate::crc::crc32c(&data[..HEADER_CRC_SPAN]) != stored {
        return Err(bad("manifest header checksum mismatch"));
    }
    if kind != KIND_MONOLITHIC && kind != KIND_SEGMENTED {
        return Err(bad(&format!("unknown manifest kind {kind}")));
    }
    Ok(Vaq3Header { kind, wal_seq, nextents })
}

/// Reads one length-prefixed, checksummed extent and verifies its CRC
/// before a single payload byte is interpreted.
fn get_extent(buf: &mut Bytes, what: &str) -> Result<Bytes, VaqError> {
    let len = take_len(buf, "extent length")?;
    let stored = take(buf, 4)?.get_u32_le();
    let payload = take(buf, len)?;
    if crate::crc::crc32c(&payload) != stored {
        return Err(bad(&format!("{what} checksum mismatch")));
    }
    Ok(payload)
}

/// Rejects unconsumed bytes at the end of an extent: a well-formed writer
/// never leaves slack, so trailing bytes mean corruption that happened to
/// keep the checksum intact (i.e. a hostile file).
fn expect_drained(buf: &Bytes, what: &str) -> Result<(), VaqError> {
    if buf.remaining() != 0 {
        return Err(bad(&format!("{what} has trailing bytes")));
    }
    Ok(())
}

impl Vaq {
    /// Serializes the trained index to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(1024 + self.codes.len() * 2);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);

        put_pca(&mut buf, &self.pca);
        put_layout(&mut buf, &self.layout);
        put_usize_slice(&mut buf, &self.bits);

        // Encoder codebooks (bits/ranges are shared with the layout).
        buf.put_u64_le(wide(self.encoder.codebooks.len()));
        for cb in &self.encoder.codebooks {
            put_matrix(&mut buf, cb);
        }

        // Codes.
        buf.put_u64_le(wide(self.n));
        buf.put_u64_le(wide(self.encoder.num_subspaces()));
        for &c in &self.codes {
            buf.put_u16_le(c);
        }

        put_ti(&mut buf, self.ti.as_ref());
        put_strategy(&mut buf, self.default_strategy);
        buf.to_vec()
    }

    /// Serializes the trained index as a checksummed `VAQ3` manifest
    /// (what [`Vaq::save`] writes): one extent holding the `VAQ1` stream,
    /// header and extent each guarded by a CRC32C.
    pub fn to_manifest_bytes(&self) -> Vec<u8> {
        vaq3_wrap(KIND_MONOLITHIC, 0, &[self.to_bytes()])
    }

    /// Deserializes an index previously produced by [`Vaq::to_bytes`] or
    /// [`Vaq::to_manifest_bytes`] (a `VAQ3` manifest of monolithic kind).
    pub fn from_bytes(data: &[u8]) -> Result<Vaq, VaqError> {
        if crate::faults::fired("persist.from_bytes") {
            return Err(VaqError::Injected { site: "persist.from_bytes" });
        }
        let mut buf = Bytes::copy_from_slice(data);

        let mut magic = [0u8; 4];
        take(&mut buf, 4)?.copy_to_slice(&mut magic);
        if &magic == MAGIC3 {
            let header = get_vaq3_header(&mut buf, data)?;
            if header.kind != KIND_MONOLITHIC {
                return Err(bad("manifest holds a segmented index, not a monolithic one"));
            }
            if header.nextents != 1 {
                return Err(bad("monolithic manifest must hold exactly one extent"));
            }
            let payload = get_extent(&mut buf, "index extent")?;
            expect_drained(&buf, "manifest")?;
            // The extent must be a raw VAQ1 stream: nesting containers
            // would let a hostile file force unbounded recursion.
            if payload.len() < 4 || &payload[..4] != MAGIC {
                return Err(bad("monolithic extent is not a VAQ1 stream"));
            }
            return Vaq::from_bytes(&payload);
        }
        if &magic == MAGIC4 {
            return Err(bad("VAQ4 manifests hold segmented indexes; open with SegmentedVaq"));
        }
        if &magic != MAGIC {
            return Err(bad("bad magic"));
        }
        let version = take(&mut buf, 4)?.get_u32_le();
        if version != VERSION {
            return Err(bad(&format!("unsupported version {version}")));
        }

        let pca = get_pca(&mut buf)?;
        let layout = get_layout(&mut buf)?;
        let nranges = layout.ranges.len();

        let bits = get_usize_slice(&mut buf)?;
        if bits.len() != nranges {
            return Err(bad("bits/subspace count mismatch"));
        }
        let codebooks = get_codebooks(&mut buf, &bits, &layout.ranges)?;
        let encoder = Encoder { codebooks, bits: bits.clone(), ranges: layout.ranges.clone() };

        let n = take_len(&mut buf, "row count")?;
        let m = take_len(&mut buf, "code width")?;
        if m != nranges {
            return Err(bad("code width mismatch"));
        }
        let codes = get_codes(&mut buf, n, &encoder)?;
        let ti = get_ti(&mut buf, n)?;
        let default_strategy = get_strategy(&mut buf)?;

        // The blocked packing is derived state (codes were range-checked
        // above, and the full audit below re-verifies them against the
        // dictionaries), so it is rebuilt rather than serialized — the
        // on-disk format is unchanged.
        let packed = PackedCodes::pack(&codes, &encoder.table_sizes().collect::<Vec<_>>(), n);
        crate::obs::note_truncated_packing(&packed, "persist.load");
        let vaq = Vaq { pca, layout, bits, encoder, codes, n, ti, default_strategy, packed };
        // The file is untrusted input: a payload can parse field-by-field
        // yet still violate the index's structural invariants (bit budget,
        // TI ordering, ...). Run the full audit and fail loud — in every
        // build profile, not just debug.
        let report = crate::audit::Audit::audit(&vaq);
        if !report.is_ok() {
            return Err(bad(&format!(
                "audit found {} invariant violation(s) after load",
                report.issues().len()
            )));
        }
        Ok(vaq)
    }

    /// Atomically writes the index to a file as a checksummed `VAQ3`
    /// manifest (tmp + fsync + rename; see `commit_bytes`'s module
    /// docs). An interrupted save leaves any previous file intact.
    pub fn save(&self, path: &Path) -> Result<(), VaqError> {
        commit_bytes(path, &self.to_manifest_bytes())
    }

    /// Loads an index from a file (`VAQ3` manifest or legacy raw `VAQ1`).
    /// The container header is validated before the body is read, so a
    /// corrupt header fails fast (see `read_index_file`).
    pub fn load(path: &Path) -> Result<Vaq, VaqError> {
        let data = read_index_file(path)?;
        Vaq::from_bytes(&data)
    }
}

impl SegmentedVaq {
    /// Serializes the segmented index to the `VAQ2` manifest: the shared
    /// model once, then one blob per sealed segment (ids, codes,
    /// tombstones, TI) and the write buffer. The snapshot and id counter
    /// are captured atomically, so serializing during concurrent ingest
    /// yields *some* consistent state; pending buffered rows are persisted
    /// as-is and re-sealed on load.
    pub fn to_bytes(&self) -> Vec<u8> {
        let (set, next_id) = self.persist_snapshot();
        let model = self.shared_model();
        let policy = self.policy();

        let mut buf = BytesMut::with_capacity(4096);
        buf.put_slice(MAGIC2);
        buf.put_u32_le(VERSION2);
        put_model_policy(&mut buf, model, policy, next_id);
        buf.put_u64_le(wide(set.segments.len()));
        for seg in &set.segments {
            put_segment(&mut buf, seg);
        }
        put_buffer(&mut buf, &set.buffer);
        buf.to_vec()
    }

    /// Serializes the segmented index as a checksummed `VAQ3` manifest
    /// (what [`SegmentedVaq::save`] writes): the same fields as `VAQ2`,
    /// framed as independently-checksummed extents — model+policy first,
    /// one extent per sealed segment, the write buffer last — so a torn
    /// or bit-flipped region is pinpointed before parsing. `wal_seq`
    /// records the last write-ahead-log sequence number already baked
    /// into this snapshot (0 when there is no WAL).
    pub fn to_manifest_bytes(&self, wal_seq: u64) -> Vec<u8> {
        let (set, next_id) = self.persist_snapshot();
        manifest_from_set(self.shared_model(), self.policy(), &set, next_id, wal_seq)
    }

    /// Deserializes a segmented index.
    ///
    /// Accepts both formats: a `VAQ2` manifest restores segments, buffer,
    /// tombstones, and policy exactly; a legacy `VAQ1` file (a monolithic
    /// [`Vaq`]) loads as one sealed segment under a default
    /// [`SegmentPolicy`], returning byte-identical search results to the
    /// original index. Every field is validated, the quiescence invariant
    /// is restored (an over-threshold buffer is sealed), and the full
    /// structural audit must pass before the index is returned.
    pub fn from_bytes(data: &[u8]) -> Result<SegmentedVaq, VaqError> {
        Ok(Self::from_bytes_with_seq(data)?.0)
    }

    /// [`SegmentedVaq::from_bytes`] plus the manifest's recorded WAL
    /// sequence number — the replay cursor durable recovery
    /// ([`SegmentedVaq::open_durable`]) resumes from. Legacy `VAQ1` /
    /// `VAQ2` files predate the WAL and report 0.
    ///
    /// [`SegmentedVaq::open_durable`]: crate::segment::SegmentedVaq::open_durable
    pub(crate) fn from_bytes_with_seq(data: &[u8]) -> Result<(SegmentedVaq, u64), VaqError> {
        if data.len() >= 4 && &data[..4] == MAGIC {
            // Legacy monolithic file: `Vaq::from_bytes` owns validation,
            // auditing, and the `persist.from_bytes` fault site.
            let vaq = Vaq::from_bytes(data)?;
            return Ok((SegmentedVaq::from_vaq(vaq, SegmentPolicy::default()), 0));
        }
        if crate::faults::fired("persist.from_bytes") {
            return Err(VaqError::Injected { site: "persist.from_bytes" });
        }
        let mut buf = Bytes::copy_from_slice(data);

        let mut magic = [0u8; 4];
        take(&mut buf, 4)?.copy_to_slice(&mut magic);
        if &magic == MAGIC4 {
            // Owned parse of the out-of-core container: every extent is
            // checksum-verified eagerly and the full audit runs, exactly
            // like `VAQ3` — this is the fallback / audit / chaos path.
            return vaq4_to_segmented(data);
        }
        if &magic == MAGIC3 {
            let header = get_vaq3_header(&mut buf, data)?;
            if header.kind == KIND_MONOLITHIC {
                if header.nextents != 1 {
                    return Err(bad("monolithic manifest must hold exactly one extent"));
                }
                let payload = get_extent(&mut buf, "index extent")?;
                expect_drained(&buf, "manifest")?;
                // Must be a raw VAQ1 stream — nesting containers would
                // let a hostile file force unbounded recursion.
                if payload.len() < 4 || &payload[..4] != MAGIC {
                    return Err(bad("monolithic extent is not a VAQ1 stream"));
                }
                let vaq = Vaq::from_bytes(&payload)?;
                let idx = SegmentedVaq::from_vaq(vaq, SegmentPolicy::default());
                return Ok((idx, header.wal_seq));
            }
            let nsegs = header
                .nextents
                .checked_sub(2)
                .ok_or_else(|| bad("segmented manifest needs model and buffer extents"))?;
            let mut mp = get_extent(&mut buf, "model extent")?;
            let (model, policy, next_id) = get_model_policy(&mut mp)?;
            expect_drained(&mp, "model extent")?;
            let mut segments = Vec::new();
            for s in 0..nsegs {
                let mut e = get_extent(&mut buf, "segment extent")?;
                segments.push(get_segment(&mut e, &model, s)?);
                expect_drained(&e, "segment extent")?;
            }
            let mut be = get_extent(&mut buf, "buffer extent")?;
            let buffer = get_buffer(&mut be, &model)?;
            expect_drained(&be, "buffer extent")?;
            expect_drained(&buf, "manifest")?;
            let index = finish_segmented_load(model, policy, segments, buffer, next_id)?;
            return Ok((index, header.wal_seq));
        }
        if &magic != MAGIC2 {
            return Err(bad("bad magic"));
        }
        let version = take(&mut buf, 4)?.get_u32_le();
        if version != VERSION2 {
            return Err(bad(&format!("unsupported segmented version {version}")));
        }

        let (model, policy, next_id) = get_model_policy(&mut buf)?;
        let nsegs = take_len(&mut buf, "segment count")?;
        let mut segments = Vec::new();
        for s in 0..nsegs {
            segments.push(get_segment(&mut buf, &model, s)?);
        }
        let buffer = get_buffer(&mut buf, &model)?;
        Ok((finish_segmented_load(model, policy, segments, buffer, next_id)?, 0))
    }

    /// Atomically writes the segmented index to a file as a checksummed
    /// `VAQ3` manifest (tmp + fsync + rename; see the module docs). An
    /// interrupted save leaves any previous file intact. For a
    /// crash-recoverable index with a write-ahead log, see
    /// [`SegmentedVaq::make_durable`].
    ///
    /// [`SegmentedVaq::make_durable`]: crate::segment::SegmentedVaq::make_durable
    pub fn save(&self, path: &Path) -> Result<(), VaqError> {
        commit_bytes(path, &self.to_manifest_bytes(0))
    }

    /// Loads a segmented index from a file (any format; see
    /// [`SegmentedVaq::from_bytes`]). Does **not** replay a write-ahead
    /// log — use [`SegmentedVaq::open_durable`] for that.
    ///
    /// [`SegmentedVaq::open_durable`]: crate::segment::SegmentedVaq::open_durable
    pub fn load(path: &Path) -> Result<SegmentedVaq, VaqError> {
        let data = read_index_file(path)?;
        SegmentedVaq::from_bytes(&data)
    }

    /// Atomically writes the index as a page-aligned `VAQ4` container
    /// whose big arrays (ids, codes, packed bytes, tombstone bitmaps, TI
    /// member tables) can be memory-mapped and scanned in place by
    /// [`SegmentedVaq::open_mapped`]. The payloads are streamed to the
    /// staging file (no whole-manifest buffer is materialized), so saving
    /// adds O(extent-table) memory, not O(file).
    pub fn save_mapped(&self, path: &Path) -> Result<(), VaqError> {
        let (set, next_id) = self.persist_snapshot();
        write_vaq4(path, self.shared_model(), self.policy(), &set, next_id, 0)
    }

    /// Opens a `VAQ4` file out-of-core: the file is memory-mapped and the
    /// sealed segments borrow their arrays from the mapping instead of
    /// copying. Small/structural extents (header, extent table, model,
    /// per-segment meta, tombstone bitmaps, buffer) are checksum-verified
    /// eagerly; the big scan extents are verified lazily, on the first
    /// search that touches them (see `LazyExtents`). Answers are
    /// byte-identical to [`SegmentedVaq::load`].
    ///
    /// Degrades to a fully-owned [`SegmentedVaq::load`] — recorded at the
    /// `persist.mmap` fault site — when the platform cannot map files,
    /// the mapping fails, or the file is a non-`VAQ4` format (which has
    /// no mappable layout).
    pub fn open_mapped(path: &Path) -> Result<SegmentedVaq, VaqError> {
        let _span = crate::obs::span("persist.open_mapped");
        if crate::faults::fired("persist.mmap") {
            crate::faults::note_degradation(
                "persist.mmap: injected mapping failure, loading an owned copy",
            );
            return SegmentedVaq::load(path);
        }
        let f = std::fs::File::open(path).map_err(|e| io_at(path, e))?;
        let Some(region) = MappedRegion::map_file(&f) else {
            crate::faults::note_degradation(
                "persist.mmap: mapping unavailable, loading an owned copy",
            );
            return SegmentedVaq::load(path);
        };
        // The mapping outlives the descriptor; the region owns the pages.
        drop(f);
        if region.as_bytes().len() < 4 || &region.as_bytes()[..4] != MAGIC4 {
            return SegmentedVaq::load(path);
        }
        let index = mapped_from_region(&region)?;
        crate::obs::counter_add("persist.mapped_opens", 1);
        Ok(index)
    }
}

/// Frames an explicit `(set, next_id)` pair as a `VAQ3` manifest — the
/// body of [`SegmentedVaq::to_manifest_bytes`], split out so durable
/// checkpoints (which already hold the writer lock and must not re-take
/// it through `persist_snapshot`) can serialize the state they pinned.
pub(crate) fn manifest_from_set(
    model: &Model,
    policy: &SegmentPolicy,
    set: &SegmentSet,
    next_id: u32,
    wal_seq: u64,
) -> Vec<u8> {
    let mut extents = Vec::with_capacity(set.segments.len() + 2);
    let mut mp = BytesMut::with_capacity(4096);
    put_model_policy(&mut mp, model, policy, next_id);
    extents.push(mp.to_vec());
    for seg in &set.segments {
        let mut e = BytesMut::with_capacity(64 + seg.core.codes.len() * 2);
        put_segment(&mut e, seg);
        extents.push(e.to_vec());
    }
    let mut be = BytesMut::with_capacity(64 + set.buffer.codes.len() * 2);
    put_buffer(&mut be, &set.buffer);
    extents.push(be.to_vec());
    vaq3_wrap(KIND_SEGMENTED, wal_seq, &extents)
}

// ---------------------------------------------------------------------------
// VAQ4: the page-aligned out-of-core container
// ---------------------------------------------------------------------------
//
// ```text
// magic "VAQ4" | version u32 | kind u8 (2=segmented) | wal_seq u64 |
// extent count u64 | header crc32c u32
// extent table: [offset u64 | len u64 | crc32c u32] × count | table crc32c u32
// payloads at their absolute offsets, each aligned to 4096 bytes
// ```
//
// Extent order: `[model+policy+next_id]`, then per sealed segment exactly
// `[meta, ids u32, codes u16, packed u8, tombstone words u64,
// ti member ids u32, ti member dists f32]` (the TI extents are length 0
// when the segment has no partition), then `[buffer]`. All scalars are
// little-endian; the payload extents are the raw arrays, so a 64-bit LE
// host can map them and read typed slices in place with no parsing.
//
// The segment meta extent holds the row count, tombstone dead counter,
// and the TI partition's small parts (centroid matrix, cluster
// boundaries, prefix info) — everything needed to build typed views of
// the big extents without touching them.

/// One extent's bytes on the write side: either an owned blob (meta /
/// model / buffer) or a borrowed typed array streamed as little-endian.
enum ExtPayload<'a> {
    Own(Vec<u8>),
    U8s(&'a [u8]),
    U16s(&'a [u16]),
    U32s(&'a [u32]),
    U64s(&'a [u64]),
    F32s(&'a [f32]),
}

impl ExtPayload<'_> {
    fn byte_len(&self) -> usize {
        match self {
            ExtPayload::Own(v) => v.len(),
            ExtPayload::U8s(s) => s.len(),
            ExtPayload::U16s(s) => s.len() * 2,
            ExtPayload::U32s(s) => s.len() * 4,
            ExtPayload::U64s(s) => s.len() * 8,
            ExtPayload::F32s(s) => s.len() * 4,
        }
    }

    /// Streams the payload into `out`, returning its CRC32C. Typed
    /// slices are converted through a bounded scratch buffer, so writing
    /// a multi-gigabyte extent never doubles it in RAM.
    fn write_into<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<u32> {
        let mut w = CrcWriter { out, state: !0u32 };
        match self {
            ExtPayload::Own(v) => w.put(v)?,
            ExtPayload::U8s(s) => w.put(s)?,
            ExtPayload::U16s(s) => w.put_scalars(s.iter().map(|v| v.to_le_bytes()))?,
            ExtPayload::U32s(s) => w.put_scalars(s.iter().map(|v| v.to_le_bytes()))?,
            ExtPayload::U64s(s) => w.put_scalars(s.iter().map(|v| v.to_le_bytes()))?,
            ExtPayload::F32s(s) => w.put_scalars(s.iter().map(|v| v.to_le_bytes()))?,
        }
        Ok(w.state ^ !0u32)
    }
}

/// A writer that folds everything it forwards into a running CRC32C.
struct CrcWriter<'a, W: std::io::Write> {
    out: &'a mut W,
    state: u32,
}

impl<W: std::io::Write> CrcWriter<'_, W> {
    fn put(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.state = crate::crc::update(self.state, bytes);
        self.out.write_all(bytes)
    }

    fn put_scalars<const N: usize>(
        &mut self,
        items: impl Iterator<Item = [u8; N]>,
    ) -> std::io::Result<()> {
        const CHUNK: usize = 1 << 16;
        let mut scratch: Vec<u8> = Vec::with_capacity(CHUNK);
        for le in items {
            scratch.extend_from_slice(&le);
            if scratch.len() + N > CHUNK {
                self.put(&scratch)?;
                scratch.clear();
            }
        }
        if scratch.is_empty() {
            Ok(())
        } else {
            self.put(&scratch)
        }
    }
}

/// Serializes one segment's meta extent: row count, tombstone dead
/// counter, and the TI partition's small parts.
fn put_seg_meta(buf: &mut BytesMut, core: &SegmentCore, tombstones: &Tombstones) {
    buf.put_u64_le(wide(core.n));
    buf.put_u64_le(wide(tombstones.dead()));
    match &core.ti {
        None => buf.put_u8(0),
        Some(ti) => {
            buf.put_u8(1);
            put_matrix(buf, &ti.centroids);
            put_usize_slice(buf, &ti.offsets);
            buf.put_u64_le(wide(ti.prefix_subspaces));
            buf.put_u64_le(wide(ti.prefix_dim));
        }
    }
}

/// The parsed segment meta extent.
struct SegMeta {
    n: usize,
    dead: usize,
    /// `(centroids, cluster boundaries, prefix_subspaces, prefix_dim)`.
    ti: Option<(Matrix, Vec<usize>, usize, usize)>,
}

fn get_seg_meta(buf: &mut Bytes, model: &Model) -> Result<SegMeta, VaqError> {
    let n = take_len(buf, "row count")?;
    if n == 0 {
        return Err(bad("segment is empty"));
    }
    let dead = take_len(buf, "tombstone dead count")?;
    if dead > n {
        return Err(bad("tombstone dead count exceeds the row count"));
    }
    let ti = match take(buf, 1)?.get_u8() {
        0 => None,
        1 => {
            let centroids = get_matrix(buf)?;
            let offsets = get_usize_slice(buf)?;
            let ncl = centroids.rows();
            if ncl == 0 || ncl > n {
                return Err(bad("TI cluster count out of range"));
            }
            if offsets.len() != ncl + 1 {
                return Err(bad("TI cluster boundary count mismatch"));
            }
            let prefix_subspaces = take_len(buf, "TI prefix subspaces")?;
            let prefix_dim = take_len(buf, "TI prefix dim")?;
            // The engine slices the projected query by the prefix and the
            // centroid width; the mapped open skips the full audit, so
            // the VAQ108 shape checks must hold here.
            let m = model.encoder.num_subspaces();
            if !(1..=m).contains(&prefix_subspaces) {
                return Err(bad("TI prefix outside the subspace plan"));
            }
            let end = model.encoder.ranges()[prefix_subspaces - 1].1;
            if prefix_dim != end || centroids.cols() != prefix_dim {
                return Err(bad("TI prefix dim does not match the subspace boundary"));
            }
            Some((centroids, offsets, prefix_subspaces, prefix_dim))
        }
        _ => return Err(bad("bad TI flag")),
    };
    Ok(SegMeta { n, dead, ti })
}

/// Streams a `VAQ4` container to `path` with the same atomic-commit
/// protocol as `commit_bytes` (tmp → fsync → rename → fsync dir, gated
/// by the `persist.commit` / `persist.fsync` fault sites). The extent
/// table is back-patched after the payload CRCs are known.
fn commit_vaq4(path: &Path, wal_seq: u64, extents: &[ExtPayload<'_>]) -> Result<(), VaqError> {
    use std::io::{Seek, SeekFrom, Write};
    let tmp = tmp_path(path);
    if crate::faults::fired("persist.commit") {
        // Simulated power loss mid-write: header-only debris in the
        // staging file; the destination is untouched.
        let _ = std::fs::write(&tmp, MAGIC4);
        return Err(abandoned(&tmp, "persist.commit"));
    }

    let mut header = BytesMut::with_capacity(HEADER_CRC_SPAN + 4);
    header.put_slice(MAGIC4);
    header.put_u32_le(VERSION4);
    header.put_u8(KIND_SEGMENTED);
    header.put_u64_le(wal_seq);
    header.put_u64_le(wide(extents.len()));
    let header_crc = crate::crc::crc32c(&header);
    header.put_u32_le(header_crc);
    let table_off = header.len();
    let table_len = extents.len() * VAQ4_TABLE_ENTRY + 4;

    let f = std::fs::File::create(&tmp).map_err(|e| io_at(&tmp, e))?;
    let mut w = std::io::BufWriter::new(f);
    w.write_all(&header).map_err(|e| io_at(&tmp, e))?;
    // Table placeholder; the real entries are seeked back in below.
    w.write_all(&vec![0u8; table_len]).map_err(|e| io_at(&tmp, e))?;
    let mut cursor = table_off + table_len;
    let mut table: Vec<(usize, usize, u32)> = Vec::with_capacity(extents.len());
    for e in extents {
        let aligned = cursor.next_multiple_of(PAGE_ALIGN);
        if aligned > cursor {
            w.write_all(&vec![0u8; aligned - cursor]).map_err(|e| io_at(&tmp, e))?;
        }
        let crc = e.write_into(&mut w).map_err(|e| io_at(&tmp, e))?;
        table.push((aligned, e.byte_len(), crc));
        cursor = aligned + e.byte_len();
    }
    w.flush().map_err(|e| io_at(&tmp, e))?;
    let mut f = w.into_inner().map_err(|e| io_at(&tmp, e.into_error()))?;
    f.seek(SeekFrom::Start(wide(table_off))).map_err(|e| io_at(&tmp, e))?;
    let mut tb = BytesMut::with_capacity(table_len);
    for &(off, len, crc) in &table {
        tb.put_u64_le(wide(off));
        tb.put_u64_le(wide(len));
        tb.put_u32_le(crc);
    }
    let table_crc = crate::crc::crc32c(&tb);
    tb.put_u32_le(table_crc);
    f.write_all(&tb).map_err(|e| io_at(&tmp, e))?;
    fsync_file(&f, &tmp)?;
    drop(f);
    if crate::faults::fired("persist.commit") {
        return Err(abandoned(path, "persist.commit"));
    }
    std::fs::rename(&tmp, path).map_err(|e| io_at(path, e))?;
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fsync_dir(parent)?;
    }
    crate::obs::counter_add("persist.commits", 1);
    Ok(())
}

/// Assembles and commits the `VAQ4` extent list for `(set, next_id)` —
/// the body of [`SegmentedVaq::save_mapped`].
pub(crate) fn write_vaq4(
    path: &Path,
    model: &Model,
    policy: &SegmentPolicy,
    set: &SegmentSet,
    next_id: u32,
    wal_seq: u64,
) -> Result<(), VaqError> {
    let mut extents: Vec<ExtPayload<'_>> = Vec::with_capacity(2 + set.segments.len() * SEG_EXTENTS);
    let mut mp = BytesMut::with_capacity(4096);
    put_model_policy(&mut mp, model, policy, next_id);
    extents.push(ExtPayload::Own(mp.to_vec()));
    for seg in &set.segments {
        let core = &seg.core;
        let mut me = BytesMut::with_capacity(256);
        put_seg_meta(&mut me, core, &seg.tombstones);
        extents.push(ExtPayload::Own(me.to_vec()));
        extents.push(ExtPayload::U32s(core.ids.as_slice()));
        extents.push(ExtPayload::U16s(core.codes.as_slice()));
        extents.push(ExtPayload::U8s(core.packed.data()));
        extents.push(ExtPayload::U64s(seg.tombstones.words()));
        match &core.ti {
            None => {
                extents.push(ExtPayload::U32s(&[]));
                extents.push(ExtPayload::F32s(&[]));
            }
            Some(ti) => {
                extents.push(ExtPayload::U32s(ti.member_idx.as_slice()));
                extents.push(ExtPayload::F32s(ti.member_dist.as_slice()));
            }
        }
    }
    let mut be = BytesMut::with_capacity(64 + set.buffer.codes.len() * 2);
    put_buffer(&mut be, &set.buffer);
    extents.push(ExtPayload::Own(be.to_vec()));
    commit_vaq4(path, wal_seq, &extents)
}

/// The verified `VAQ4` extent table: spans (absolute offset + byte
/// length) and stored CRCs, parallel by extent index.
struct Vaq4Table {
    wal_seq: u64,
    extents: Vec<ExtentSpan>,
    crcs: Vec<u32>,
}

/// Parses and verifies the `VAQ4` header and extent table against the
/// real file length: a fabricated extent count or a span escaping the
/// file dies here, before any per-extent work (and before any
/// table-sized allocation). Also enforces the layout invariants the
/// mapped reader relies on — page-aligned, non-overlapping, ascending
/// extents that end exactly at the end of the file (VAQ113).
fn get_vaq4_table(data: &[u8]) -> Result<Vaq4Table, VaqError> {
    let head_len = HEADER_CRC_SPAN + 4;
    if data.len() < head_len {
        return Err(VaqError::BadConfig("corrupt index file: truncated".into()));
    }
    let mut head = Bytes::copy_from_slice(&data[4..head_len]);
    let version = head.get_u32_le();
    if version != VERSION4 {
        return Err(bad(&format!("unsupported manifest version {version}")));
    }
    if head.get_u8() != KIND_SEGMENTED {
        return Err(bad("VAQ4 manifests hold only segmented indexes"));
    }
    let wal_seq = head.get_u64_le();
    let nextents = narrow(head.get_u64_le(), "extent count")?;
    let stored = head.get_u32_le();
    if crate::crc::crc32c(&data[..HEADER_CRC_SPAN]) != stored {
        return Err(bad("manifest header checksum mismatch"));
    }
    let table_len = nextents
        .checked_mul(VAQ4_TABLE_ENTRY)
        .and_then(|t| t.checked_add(4))
        .ok_or_else(|| bad("extent table size overflow"))?;
    let table_end =
        head_len.checked_add(table_len).ok_or_else(|| bad("extent table size overflow"))?;
    if table_end > data.len() {
        return Err(bad("extent table past the end of the file"));
    }
    let table = &data[head_len..table_end];
    let (entries, stored_tc) = table.split_at(table_len - 4);
    let mut tc = Bytes::copy_from_slice(stored_tc);
    if crate::crc::crc32c(entries) != tc.get_u32_le() {
        return Err(bad("extent table checksum mismatch"));
    }
    let mut tb = Bytes::copy_from_slice(entries);
    let mut extents = Vec::with_capacity(nextents);
    let mut crcs = Vec::with_capacity(nextents);
    let mut prev_end = table_end;
    for i in 0..nextents {
        let offset = narrow(tb.get_u64_le(), "extent offset")?;
        let len = narrow(tb.get_u64_le(), "extent length")?;
        crcs.push(tb.get_u32_le());
        if !offset.is_multiple_of(PAGE_ALIGN) {
            return Err(bad(&format!("extent {i} is not page aligned")));
        }
        if offset < prev_end {
            return Err(bad(&format!("extent {i} overlaps its predecessor")));
        }
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= data.len())
            .ok_or_else(|| bad(&format!("extent {i} escapes the file bounds")))?;
        prev_end = end;
        extents.push(ExtentSpan { offset, len });
    }
    if prev_end != data.len() {
        return Err(bad("trailing bytes after the last extent"));
    }
    Ok(Vaq4Table { wal_seq, extents, crcs })
}

/// The bytes of extent `i` (bounds proven by [`get_vaq4_table`]).
fn ext<'d>(data: &'d [u8], t: &Vaq4Table, i: usize) -> &'d [u8] {
    let s = t.extents[i];
    &data[s.offset..s.offset + s.len]
}

fn verify_ext_crc(data: &[u8], t: &Vaq4Table, i: usize, what: &str) -> Result<(), VaqError> {
    if crate::crc::crc32c(ext(data, t, i)) != t.crcs[i] {
        return Err(bad(&format!("{what} extent checksum mismatch")));
    }
    Ok(())
}

/// `VAQ4` extent count → sealed segment count.
fn seg_count(nextents: usize) -> Result<usize, VaqError> {
    let body = nextents
        .checked_sub(2)
        .ok_or_else(|| bad("VAQ4 manifest needs model and buffer extents"))?;
    if !body.is_multiple_of(SEG_EXTENTS) {
        return Err(bad("VAQ4 extent count is not 2 + 7 per segment"));
    }
    Ok(body / SEG_EXTENTS)
}

fn u16s_from_le(bytes: &[u8], n: usize, what: &str) -> Result<Vec<u16>, VaqError> {
    if bytes.len() != checked_size(n, 2)? {
        return Err(bad(&format!("{what} extent sized wrong")));
    }
    Ok(bytes.chunks_exact(2).map(|c| u16::from_le_bytes([c[0], c[1]])).collect())
}

fn u32s_from_le(bytes: &[u8], n: usize, what: &str) -> Result<Vec<u32>, VaqError> {
    if bytes.len() != checked_size(n, 4)? {
        return Err(bad(&format!("{what} extent sized wrong")));
    }
    Ok(bytes.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
}

fn u64s_from_le(bytes: &[u8], n: usize, what: &str) -> Result<Vec<u64>, VaqError> {
    if bytes.len() != checked_size(n, 8)? {
        return Err(bad(&format!("{what} extent sized wrong")));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect())
}

fn f32s_from_le(bytes: &[u8], n: usize, what: &str) -> Result<Vec<f32>, VaqError> {
    if bytes.len() != checked_size(n, 4)? {
        return Err(bad(&format!("{what} extent sized wrong")));
    }
    Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
}

/// Shared tombstone-bitmap invariants: sizing, popcount agreement with
/// the dead counter, and no bits past the row count.
fn check_tombstone_words(words: &[u64], dead: usize, n: usize) -> Result<(), VaqError> {
    if words.len() != n.div_ceil(64) || dead > n {
        return Err(bad("tombstone bitmap sized wrong"));
    }
    let popcount: u64 = words.iter().map(|w| u64::from(w.count_ones())).sum();
    if popcount != wide(dead) {
        return Err(bad("tombstone popcount disagrees with dead counter"));
    }
    if !n.is_multiple_of(64) {
        if let Some(&last) = words.last() {
            if last >> (n % 64) != 0 {
                return Err(bad("tombstone bits set past the row count"));
            }
        }
    }
    Ok(())
}

/// Fully-owned parse of a `VAQ4` stream: every extent checksum is
/// verified eagerly, every array is copied out and field-validated, and
/// the full structural audit runs — the same trust posture as `VAQ3`.
/// This is what `vaq_cli audit`, the chaos harness, and the
/// `persist.mmap` degrade path go through.
fn vaq4_to_segmented(data: &[u8]) -> Result<(SegmentedVaq, u64), VaqError> {
    let t = get_vaq4_table(data)?;
    for (i, what) in (0..t.extents.len()).map(|i| (i, "VAQ4")) {
        verify_ext_crc(data, &t, i, what)?;
    }
    let nsegs = seg_count(t.extents.len())?;
    let mut mp = Bytes::copy_from_slice(ext(data, &t, 0));
    let (model, policy, next_id) = get_model_policy(&mut mp)?;
    expect_drained(&mp, "model extent")?;
    let sizes: Vec<usize> = model.encoder.table_sizes().collect();
    let m = model.encoder.num_subspaces();
    let mut segments = Vec::with_capacity(nsegs);
    for s in 0..nsegs {
        let base = 1 + s * SEG_EXTENTS;
        let mut me = Bytes::copy_from_slice(ext(data, &t, base));
        let meta = get_seg_meta(&mut me, &model)?;
        expect_drained(&me, "segment meta extent")?;
        let n = meta.n;
        let ids = u32s_from_le(ext(data, &t, base + 1), n, "segment ids")?;
        if !ids.windows(2).all(|w| w[0] < w[1]) {
            return Err(bad("ids are not strictly ascending"));
        }
        let codes = u16s_from_le(ext(data, &t, base + 2), checked_size(n, m)?, "segment codes")?;
        for (i, &c) in codes.iter().enumerate() {
            if usize::from(c) >= sizes[i % m] {
                return Err(bad("code exceeds dictionary size"));
            }
        }
        let packed = PackedCodes::from_parts(ext(data, &t, base + 3).to_vec().into(), &sizes, n)
            .ok_or_else(|| bad(&format!("segment {s} packed extent sized wrong")))?;
        crate::obs::note_truncated_packing(&packed, "persist.segment_load");
        let words =
            u64s_from_le(ext(data, &t, base + 4), n.div_ceil(64), "segment tombstone words")?;
        check_tombstone_words(&words, meta.dead, n)?;
        let tombstones = Tombstones::from_raw(words, meta.dead);
        let ti = match meta.ti {
            None => {
                if t.extents[base + 5].len != 0 || t.extents[base + 6].len != 0 {
                    return Err(bad("TI extents present without a TI partition"));
                }
                None
            }
            Some((centroids, offsets, prefix_subspaces, prefix_dim)) => {
                let idx = u32s_from_le(ext(data, &t, base + 5), n, "TI member ids")?;
                let dist = f32s_from_le(ext(data, &t, base + 6), n, "TI member distances")?;
                for &i in &idx {
                    if u64::from(i) >= wide(n) {
                        return Err(bad("TI member out of range"));
                    }
                }
                let ti = TiPartition::from_parts(
                    centroids,
                    offsets,
                    idx.into(),
                    dist.into(),
                    prefix_subspaces,
                    prefix_dim,
                )
                .ok_or_else(|| bad("TI boundaries are inconsistent"))?;
                Some(ti)
            }
        };
        let core = SegmentCore { ids: ids.into(), codes: codes.into(), n, packed, ti, lazy: None };
        segments.push(Segment { core: Arc::new(core), tombstones });
    }
    let mut be = Bytes::copy_from_slice(ext(data, &t, t.extents.len() - 1));
    let buffer = get_buffer(&mut be, &model)?;
    expect_drained(&be, "buffer extent")?;
    Ok((finish_segmented_load(model, policy, segments, buffer, next_id)?, t.wal_seq))
}

/// Deferred verification state for one mapped segment, plus its prefetch
/// hints. The big extents are *not* verified at open — the first search
/// that scans the segment pays one CRC + content-invariant pass over the
/// extents it will actually read (the packed extent only when a
/// quantized scan needs it), and the verdict is cached. A failed
/// verification poisons the segment: every later search reports the same
/// typed corruption error. Verification never mutates, so two racing
/// first touches at worst duplicate the check.
#[derive(Debug)]
pub(crate) struct LazyExtents {
    /// ids + codes + TI member tables: 0 unverified, 1 ok, 2 bad.
    state_scan: AtomicU8,
    /// The packed-codes extent (quantized scans only): same encoding.
    state_packed: AtomicU8,
    region: Arc<MappedRegion>,
    ids: (ExtentSpan, u32),
    codes: (ExtentSpan, u32),
    packed: (ExtentSpan, u32),
    ti_idx: (ExtentSpan, u32),
    ti_dist: (ExtentSpan, u32),
    /// Dictionary rows per subspace, for the code range re-check.
    sizes: Vec<usize>,
    prefetch: ScanPrefetch,
}

impl LazyExtents {
    pub(crate) fn prefetch(&self) -> &ScanPrefetch {
        &self.prefetch
    }

    /// Verifies the scan extents (and, when `needs_packed`, the packed
    /// extent) exactly once; later calls return the cached verdict.
    pub(crate) fn verify_once(
        &self,
        core: &SegmentCore,
        needs_packed: bool,
    ) -> Result<(), VaqError> {
        self.verify_group(&self.state_scan, || self.verify_scan(core))?;
        if needs_packed {
            self.verify_group(&self.state_packed, || self.verify_packed(core))?;
        }
        Ok(())
    }

    fn verify_group(
        &self,
        state: &AtomicU8,
        check: impl FnOnce() -> Result<(), VaqError>,
    ) -> Result<(), VaqError> {
        match state.load(Ordering::SeqCst) {
            1 => return Ok(()),
            2 => return Err(bad("mapped segment previously failed verification")),
            _ => {}
        }
        let res = check();
        state.store(if res.is_ok() { 1 } else { 2 }, Ordering::SeqCst);
        if res.is_ok() {
            crate::obs::counter_add("persist.lazy_extents_verified", 1);
        } else {
            crate::obs::counter_add("persist.lazy_extents_failed", 1);
        }
        res
    }

    fn check_crc(&self, (span, crc): (ExtentSpan, u32), what: &str) -> Result<(), VaqError> {
        let data = self.region.as_bytes();
        let end = span
            .offset
            .checked_add(span.len)
            .filter(|&e| e <= data.len())
            .ok_or_else(|| bad(&format!("mapped {what} extent escapes the file bounds")))?;
        if crate::crc::crc32c(&data[span.offset..end]) != crc {
            return Err(bad(&format!("mapped {what} extent checksum mismatch")));
        }
        Ok(())
    }

    /// CRCs + content invariants for the extents every strategy reads:
    /// the scan paths index dictionaries by code and map results through
    /// `ids`, so hostile bytes must be rejected before any of that.
    fn verify_scan(&self, core: &SegmentCore) -> Result<(), VaqError> {
        self.check_crc(self.ids, "segment ids")?;
        self.check_crc(self.codes, "segment codes")?;
        self.check_crc(self.ti_idx, "TI member ids")?;
        self.check_crc(self.ti_dist, "TI member distances")?;
        if !core.ids.windows(2).all(|w| w[0] < w[1]) {
            return Err(bad("ids are not strictly ascending"));
        }
        let m = self.sizes.len();
        for (i, &c) in core.codes.iter().enumerate() {
            if usize::from(c) >= self.sizes[i % m] {
                return Err(bad("code exceeds dictionary size"));
            }
        }
        if let Some(ti) = &core.ti {
            for c in 0..ti.num_clusters() {
                let dists = ti.cluster_dist(c);
                if !dists.iter().all(|d| d.is_finite() && *d >= 0.0)
                    || !dists.windows(2).all(|w| w[0] <= w[1])
                {
                    return Err(bad("TI cluster distances are unsorted or non-finite"));
                }
                for &i in ti.cluster_idx(c) {
                    if u64::from(i) >= wide(core.n) {
                        return Err(bad("TI member out of range"));
                    }
                }
            }
            if !ti.covers_exactly(core.n) {
                return Err(bad("TI clusters do not partition the segment"));
            }
        }
        Ok(())
    }

    /// CRC + VAQ110 consistency for the packed extent: the quantized scan
    /// prunes with bounds computed from these bytes, so a packing that
    /// disagrees with the code array would silently drop true neighbours.
    /// An *inactive* packing is tolerated (files written before nibble
    /// packing could refuse to pack wholesale): the engine then degrades
    /// to the exact scan instead of pruning with stale bounds.
    fn verify_packed(&self, core: &SegmentCore) -> Result<(), VaqError> {
        self.check_crc(self.packed, "packed codes")?;
        if !core.packed.is_active() {
            return Ok(());
        }
        if PackedCodes::pack(&core.codes, &self.sizes, core.n) != core.packed {
            return Err(bad("packed codes disagree with the code array"));
        }
        Ok(())
    }
}

/// Builds a mapped [`SegmentedVaq`] over a verified `VAQ4` region — the
/// body of [`SegmentedVaq::open_mapped`]. Eagerly verified: header,
/// extent table, model, per-segment meta, tombstone bitmaps (deletes
/// mutate them, and the popcount check needs the words anyway), the
/// buffer, and the cheap cross-segment id-range probes (first/last
/// element of each mapped ids extent — two page faults per segment).
/// Everything else is deferred to `LazyExtents`; the full structural
/// audit is what `vaq_cli audit` runs through the owned parse.
fn mapped_from_region(region: &Arc<MappedRegion>) -> Result<SegmentedVaq, VaqError> {
    let data = region.as_bytes();
    let t = get_vaq4_table(data)?;
    let nsegs = seg_count(t.extents.len())?;
    verify_ext_crc(data, &t, 0, "model")?;
    let mut mp = Bytes::copy_from_slice(ext(data, &t, 0));
    let (model, policy, next_id) = get_model_policy(&mut mp)?;
    expect_drained(&mp, "model extent")?;
    let sizes: Vec<usize> = model.encoder.table_sizes().collect();
    let m = model.encoder.num_subspaces();
    let mut segments = Vec::with_capacity(nsegs);
    let mut prev_last: Option<u32> = None;
    for s in 0..nsegs {
        let base = 1 + s * SEG_EXTENTS;
        verify_ext_crc(data, &t, base, "segment meta")?;
        let mut me = Bytes::copy_from_slice(ext(data, &t, base));
        let meta = get_seg_meta(&mut me, &model)?;
        expect_drained(&me, "segment meta extent")?;
        let n = meta.n;
        let span = |i: usize| t.extents[i];
        if span(base + 1).len != checked_size(n, 4)? {
            return Err(bad("segment ids extent sized wrong"));
        }
        if span(base + 2).len != checked_size(checked_size(n, m)?, 2)? {
            return Err(bad("segment codes extent sized wrong"));
        }
        let misaligned = || bad("mapped extent misaligned for its element type");
        let ids = U32Storage::mapped(Arc::clone(region), span(base + 1).offset, n)
            .ok_or_else(misaligned)?;
        let codes =
            U16Storage::mapped(Arc::clone(region), span(base + 2).offset, checked_size(n, m)?)
                .ok_or_else(misaligned)?;
        let pstore =
            CodesStorage::mapped(Arc::clone(region), span(base + 3).offset, span(base + 3).len)
                .ok_or_else(misaligned)?;
        let packed = PackedCodes::from_parts(pstore, &sizes, n)
            .ok_or_else(|| bad(&format!("segment {s} packed extent sized wrong")))?;
        crate::obs::note_truncated_packing(&packed, "persist.segment_map");
        verify_ext_crc(data, &t, base + 4, "segment tombstone")?;
        if span(base + 4).len != checked_size(n.div_ceil(64), 8)? {
            return Err(bad("segment tombstone words extent sized wrong"));
        }
        let words = U64Storage::mapped(Arc::clone(region), span(base + 4).offset, n.div_ceil(64))
            .ok_or_else(misaligned)?;
        check_tombstone_words(&words, meta.dead, n)?;
        let tombstones = Tombstones::from_storage(words, meta.dead);
        let (ti, ti_idx_span, ti_dist_span) = match meta.ti {
            None => {
                if span(base + 5).len != 0 || span(base + 6).len != 0 {
                    return Err(bad("TI extents present without a TI partition"));
                }
                (None, ExtentSpan::default(), ExtentSpan::default())
            }
            Some((centroids, offsets, prefix_subspaces, prefix_dim)) => {
                if span(base + 5).len != checked_size(n, 4)?
                    || span(base + 6).len != checked_size(n, 4)?
                {
                    return Err(bad("TI member extents sized wrong"));
                }
                let idx = U32Storage::mapped(Arc::clone(region), span(base + 5).offset, n)
                    .ok_or_else(misaligned)?;
                let dist = F32Storage::mapped(Arc::clone(region), span(base + 6).offset, n)
                    .ok_or_else(misaligned)?;
                let ti = TiPartition::from_parts(
                    centroids,
                    offsets,
                    idx,
                    dist,
                    prefix_subspaces,
                    prefix_dim,
                )
                .ok_or_else(|| bad("TI boundaries are inconsistent"))?;
                (Some(ti), span(base + 5), span(base + 6))
            }
        };
        // Cross-segment ordering from the boundary elements only (the
        // full strict-ascent check is deferred with the ids extent).
        if let (Some(&first), Some(&last)) = (ids.first(), ids.last()) {
            if let Some(pl) = prev_last {
                if first <= pl {
                    return Err(bad("segment id ranges overlap or are unsorted"));
                }
            }
            if last >= next_id {
                return Err(bad("id counter behind the stored ids"));
            }
            prev_last = Some(last);
        }
        let prefetch = ScanPrefetch::new(
            Arc::clone(region),
            span(base + 2),
            span(base + 3),
            ti_idx_span,
            ti_dist_span,
        );
        let lazy = LazyExtents {
            state_scan: AtomicU8::new(0),
            state_packed: AtomicU8::new(0),
            region: Arc::clone(region),
            ids: (span(base + 1), t.crcs[base + 1]),
            codes: (span(base + 2), t.crcs[base + 2]),
            packed: (span(base + 3), t.crcs[base + 3]),
            ti_idx: (ti_idx_span, t.crcs[base + 5]),
            ti_dist: (ti_dist_span, t.crcs[base + 6]),
            sizes: sizes.clone(),
            prefetch,
        };
        let core = SegmentCore { ids, codes, n, packed, ti, lazy: Some(lazy) };
        segments.push(Segment { core: Arc::new(core), tombstones });
    }
    let last = t.extents.len() - 1;
    verify_ext_crc(data, &t, last, "buffer")?;
    let mut be = Bytes::copy_from_slice(ext(data, &t, last));
    let buffer = get_buffer(&mut be, &model)?;
    expect_drained(&be, "buffer extent")?;
    if let Some(&bl) = buffer.ids.last() {
        if bl >= next_id {
            return Err(bad("id counter behind the stored ids"));
        }
        if let Some(pl) = prev_last {
            if buffer.ids.first().is_some_and(|&bf| bf <= pl) {
                return Err(bad("buffer ids overlap the sealed segments"));
            }
        }
        let _ = bl;
    }
    let index = SegmentedVaq::from_parts(model, policy, segments, buffer, next_id);
    index.normalize_after_load();
    Ok(index)
}

/// Writes the shared model, maintenance policy, and id counter — the
/// leading fields of both `VAQ2` and a `VAQ3` model extent.
fn put_model_policy(buf: &mut BytesMut, model: &Model, policy: &SegmentPolicy, next_id: u32) {
    put_pca(buf, &model.pca);
    put_layout(buf, &model.layout);
    put_usize_slice(buf, &model.bits);
    buf.put_u64_le(wide(model.encoder.codebooks.len()));
    for cb in &model.encoder.codebooks {
        put_matrix(buf, cb);
    }
    put_strategy(buf, model.default_strategy);
    buf.put_u64_le(wide(model.ti_prefix_subspaces));
    buf.put_u64_le(model.seed);

    buf.put_u64_le(wide(policy.seal_threshold));
    buf.put_u64_le(wide(policy.compact_min_segments));
    buf.put_f64_le(policy.tombstone_purge_frac);
    buf.put_u64_le(wide(policy.ti_clusters));
    buf.put_u8(u8::from(policy.background));

    buf.put_u32_le(next_id);
}

/// Reads and validates what [`put_model_policy`] wrote.
fn get_model_policy(buf: &mut Bytes) -> Result<(Model, SegmentPolicy, u32), VaqError> {
    let pca = get_pca(buf)?;
    let layout = get_layout(buf)?;
    let bits = get_usize_slice(buf)?;
    if bits.len() != layout.ranges.len() {
        return Err(bad("bits/subspace count mismatch"));
    }
    let codebooks = get_codebooks(buf, &bits, &layout.ranges)?;
    let encoder = Encoder { codebooks, bits: bits.clone(), ranges: layout.ranges.clone() };
    let m = encoder.num_subspaces();
    let default_strategy = get_strategy(buf)?;
    let ti_prefix_subspaces = take_len(buf, "TI prefix")?;
    if !(1..=m).contains(&ti_prefix_subspaces) {
        return Err(bad("TI prefix outside the subspace plan"));
    }
    let seed = take(buf, 8)?.get_u64_le();
    let model = Model { pca, layout, bits, encoder, default_strategy, ti_prefix_subspaces, seed };

    // Policy (re-clamped through the builders: persisted knobs are as
    // untrusted as everything else).
    let seal_threshold = take_len(buf, "seal threshold")?;
    let compact_min_segments = take_len(buf, "compaction minimum")?;
    let tombstone_purge_frac = take(buf, 8)?.get_f64_le();
    let ti_clusters = take_len(buf, "TI cluster knob")?;
    let mut policy = SegmentPolicy::default()
        .with_seal_threshold(seal_threshold)
        .with_compact_min_segments(compact_min_segments)
        .with_tombstone_purge_frac(tombstone_purge_frac)
        .with_ti_clusters(ti_clusters);
    policy.background = match take(buf, 1)?.get_u8() {
        0 => false,
        1 => true,
        _ => return Err(bad("bad background flag")),
    };

    let next_id = take(buf, 4)?.get_u32_le();
    Ok((model, policy, next_id))
}

/// Writes one sealed segment (row count, ids, codes, tombstones, TI).
fn put_segment(buf: &mut BytesMut, seg: &Segment) {
    let core = &seg.core;
    buf.put_u64_le(wide(core.n));
    for &id in core.ids.iter() {
        buf.put_u32_le(id);
    }
    for &c in core.codes.iter() {
        buf.put_u16_le(c);
    }
    put_tombstones(buf, &seg.tombstones);
    put_ti(buf, core.ti.as_ref());
}

/// Reads and validates one sealed segment (`s` is its ordinal, for error
/// messages only); the packed code layout is derived state and rebuilt.
fn get_segment(buf: &mut Bytes, model: &Model, s: usize) -> Result<Segment, VaqError> {
    let n = take_len(buf, "row count")?;
    if n == 0 {
        return Err(bad(&format!("segment {s} is empty")));
    }
    let ids = get_id_slice(buf, n)?;
    let codes = get_codes(buf, n, &model.encoder)?;
    let tombstones = get_tombstones(buf, n)?;
    let ti = get_ti(buf, n)?;
    let packed = PackedCodes::pack(&codes, &model.encoder.table_sizes().collect::<Vec<_>>(), n);
    crate::obs::note_truncated_packing(&packed, "persist.segment_parse");
    let core = SegmentCore { ids: ids.into(), codes: codes.into(), n, packed, ti, lazy: None };
    Ok(Segment { core: Arc::new(core), tombstones })
}

/// Writes the unsealed write buffer.
fn put_buffer(buf: &mut BytesMut, buffer: &Buffer) {
    buf.put_u64_le(wide(buffer.ids.len()));
    for &id in &buffer.ids {
        buf.put_u32_le(id);
    }
    for &c in &buffer.codes {
        buf.put_u16_le(c);
    }
    put_tombstones(buf, &buffer.tombstones);
}

/// Reads and validates the write buffer.
fn get_buffer(buf: &mut Bytes, model: &Model) -> Result<Buffer, VaqError> {
    let brows = take_len(buf, "buffer row count")?;
    Ok(Buffer {
        ids: get_id_slice(buf, brows)?,
        codes: get_codes(buf, brows, &model.encoder)?,
        tombstones: get_tombstones(buf, brows)?,
    })
}

/// Assembles the parsed parts, restores the quiescence invariant, and
/// runs the full structural audit — the shared tail of every segmented
/// load path. The file is untrusted input: a payload can parse
/// field-by-field yet still violate structural invariants, so the audit
/// (VAQ101–VAQ112) must pass before the index is returned. The audit's
/// quiescence check requires a drained buffer, so an over-threshold
/// buffer is sealed first — sealing only rearranges data that was
/// already field-validated.
fn finish_segmented_load(
    model: Model,
    policy: SegmentPolicy,
    segments: Vec<Segment>,
    buffer: Buffer,
    next_id: u32,
) -> Result<SegmentedVaq, VaqError> {
    let index = SegmentedVaq::from_parts(model, policy, segments, buffer, next_id);
    index.normalize_after_load();
    let report = crate::audit::Audit::audit(&index);
    if !report.is_ok() {
        return Err(bad(&format!(
            "audit found {} invariant violation(s) after load",
            report.issues().len()
        )));
    }
    Ok(index)
}

fn put_tombstones(buf: &mut BytesMut, t: &Tombstones) {
    buf.put_u64_le(wide(t.dead()));
    buf.put_u64_le(wide(t.words().len()));
    for &w in t.words() {
        buf.put_u64_le(w);
    }
}

fn get_tombstones(buf: &mut Bytes, n: usize) -> Result<Tombstones, VaqError> {
    let dead = take_len(buf, "tombstone dead count")?;
    let nwords = take_len(buf, "tombstone word count")?;
    if nwords != n.div_ceil(64) || dead > n {
        return Err(bad("tombstone bitmap sized wrong"));
    }
    let mut bytes = take(buf, checked_size(nwords, 8)?)?;
    let words: Vec<u64> = (0..nwords).map(|_| bytes.get_u64_le()).collect();
    let popcount: u64 = words.iter().map(|w| u64::from(w.count_ones())).sum();
    if popcount != wide(dead) {
        return Err(bad("tombstone popcount disagrees with dead counter"));
    }
    if !n.is_multiple_of(64) {
        if let Some(&last) = words.last() {
            if last >> (n % 64) != 0 {
                return Err(bad("tombstone bits set past the row count"));
            }
        }
    }
    Ok(Tombstones::from_raw(words, dead))
}

/// Reads exactly `n` little-endian `u32` ids, requiring strict ascent —
/// the segment search path binary-searches and maps through this array.
fn get_id_slice(buf: &mut Bytes, n: usize) -> Result<Vec<u32>, VaqError> {
    let mut bytes = take(buf, checked_size(n, 4)?)?;
    let ids: Vec<u32> = (0..n).map(|_| bytes.get_u32_le()).collect();
    if !ids.windows(2).all(|w| w[0] < w[1]) {
        return Err(bad("ids are not strictly ascending"));
    }
    Ok(ids)
}

fn take(buf: &mut Bytes, n: usize) -> Result<Bytes, VaqError> {
    if buf.remaining() < n {
        return Err(VaqError::BadConfig("corrupt index file: truncated".into()));
    }
    Ok(buf.split_to(n))
}

/// The uniform corruption error: every loader rejection routes through
/// here so callers can match one variant.
fn bad(msg: &str) -> VaqError {
    VaqError::BadConfig(format!("corrupt index file: {msg}"))
}

/// `count * elem_size` with overflow reported as corruption — every length
/// in the file is attacker-controlled, so no size math may wrap.
fn checked_size(count: usize, elem_size: usize) -> Result<usize, VaqError> {
    count
        .checked_mul(elem_size)
        .ok_or_else(|| VaqError::BadConfig("corrupt index file: length overflow".into()))
}

/// Widens a host-side length to the on-disk `u64`. `usize` is at most 64
/// bits on every supported target, so the conversion cannot fail; the
/// saturating fallback keeps the writer total rather than panicking if
/// that ever changes. The write path's only integer conversion funnels
/// through here (rule VAQ010).
pub(crate) fn wide(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// Narrows an on-disk `u64` to a host `usize`, rejecting values this
/// address space cannot represent — the check an `as usize` cast would
/// silently truncate away on 32-bit targets (rule VAQ010).
pub(crate) fn narrow(v: u64, what: &str) -> Result<usize, VaqError> {
    usize::try_from(v).map_err(|_| bad(&format!("{what} {v} does not fit in usize")))
}

/// Reads one little-endian `u64` length/count field and narrows it.
fn take_len(buf: &mut Bytes, what: &str) -> Result<usize, VaqError> {
    narrow(take(buf, 8)?.get_u64_le(), what)
}

fn put_pca(buf: &mut BytesMut, pca: &Pca) {
    put_f32_slice(buf, pca.mean());
    put_matrix(buf, pca.components());
    put_f64_slice(buf, pca.eigenvalues());
}

fn get_pca(buf: &mut Bytes) -> Result<Pca, VaqError> {
    let mean = get_f32_slice(buf)?;
    let components = get_matrix(buf)?;
    let eigenvalues = get_f64_slice(buf)?;
    if mean.len() != components.rows() || eigenvalues.len() != components.cols() {
        return Err(bad("pca shape mismatch"));
    }
    Ok(Pca::from_parts(mean, components, eigenvalues))
}

fn put_layout(buf: &mut BytesMut, layout: &SubspaceLayout) {
    put_usize_slice(buf, &layout.perm);
    buf.put_u64_le(wide(layout.ranges.len()));
    for &(lo, hi) in &layout.ranges {
        buf.put_u64_le(wide(lo));
        buf.put_u64_le(wide(hi));
    }
    put_f64_slice(buf, &layout.variance_share);
    put_f64_slice(buf, &layout.pc_share);
}

fn get_layout(buf: &mut Bytes) -> Result<SubspaceLayout, VaqError> {
    let perm = get_usize_slice(buf)?;
    let nranges = take_len(buf, "subspace range count")?;
    if nranges > perm.len().max(1) {
        return Err(bad("too many subspace ranges"));
    }
    let mut ranges = Vec::with_capacity(nranges);
    for _ in 0..nranges {
        let lo = take_len(buf, "range lo")?;
        let hi = take_len(buf, "range hi")?;
        if lo > hi || hi > perm.len() {
            return Err(bad("invalid subspace range"));
        }
        ranges.push((lo, hi));
    }
    let variance_share = get_f64_slice(buf)?;
    let pc_share = get_f64_slice(buf)?;
    if variance_share.len() != nranges || pc_share.len() != perm.len() {
        return Err(bad("layout share lengths"));
    }
    Ok(SubspaceLayout { perm, ranges, variance_share, pc_share })
}

/// Reads the per-subspace codebooks, validated against the bit plan and
/// subspace widths.
fn get_codebooks(
    buf: &mut Bytes,
    bits: &[usize],
    ranges: &[(usize, usize)],
) -> Result<Vec<Matrix>, VaqError> {
    let ncb = take_len(buf, "codebook count")?;
    if ncb != ranges.len() {
        return Err(bad("codebook count mismatch"));
    }
    let mut codebooks = Vec::with_capacity(ncb);
    for (s, &(lo, hi)) in ranges.iter().enumerate() {
        let cb = get_matrix(buf)?;
        if cb.cols() != hi - lo {
            return Err(bad(&format!("codebook {s} width mismatch")));
        }
        if bits[s] > crate::audit::MAX_CODE_BITS || cb.rows() > 1usize << bits[s] {
            return Err(bad(&format!("codebook {s} larger than its bit width")));
        }
        codebooks.push(cb);
    }
    Ok(codebooks)
}

/// Reads an `n × m` code array and range-checks every code against its
/// dictionary — anything downstream (packing, TI builds, scans) may index
/// dictionaries by code, so out-of-range values must die here.
fn get_codes(buf: &mut Bytes, n: usize, encoder: &Encoder) -> Result<Vec<u16>, VaqError> {
    let m = encoder.num_subspaces();
    let total = n.checked_mul(m).ok_or_else(|| bad("code size overflow"))?;
    let nbytes = total.checked_mul(2).ok_or_else(|| bad("code size overflow"))?;
    // Take the bytes *before* allocating: the header is untrusted, and
    // a fabricated count must fail the length check, not reserve memory.
    let mut code_bytes = take(buf, nbytes)?;
    let mut codes = Vec::with_capacity(total);
    for _ in 0..total {
        codes.push(code_bytes.get_u16_le());
    }
    for (i, &c) in codes.iter().enumerate() {
        let s = i % m;
        if usize::from(c) >= encoder.codebooks[s].rows() {
            return Err(bad("code exceeds dictionary size"));
        }
    }
    Ok(codes)
}

fn put_ti(buf: &mut BytesMut, ti: Option<&TiPartition>) {
    match ti {
        None => buf.put_u8(0),
        Some(ti) => {
            buf.put_u8(1);
            put_matrix(buf, &ti.centroids);
            buf.put_u64_le(wide(ti.num_clusters()));
            for c in 0..ti.num_clusters() {
                buf.put_u64_le(wide(ti.cluster_len(c)));
                for (&idx, &dist) in ti.cluster_idx(c).iter().zip(ti.cluster_dist(c)) {
                    buf.put_u32_le(idx);
                    buf.put_f32_le(dist);
                }
            }
            buf.put_u64_le(wide(ti.prefix_subspaces));
            buf.put_u64_le(wide(ti.prefix_dim));
        }
    }
}

/// Reads an optional TI partition over an `n`-row database (monolithic
/// index or one sealed segment), validating that it partitions exactly
/// those rows.
fn get_ti(buf: &mut Bytes, n: usize) -> Result<Option<TiPartition>, VaqError> {
    match take(buf, 1)?.get_u8() {
        0 => Ok(None),
        1 => {
            let centroids = get_matrix(buf)?;
            let ncl = take_len(buf, "TI cluster count")?;
            if ncl != centroids.rows() {
                return Err(bad("TI cluster count mismatch"));
            }
            // More clusters than vectors is never produced by training
            // (and would let a zero-width centroid matrix request an
            // enormous cluster table).
            if ncl > n {
                return Err(bad("TI cluster count exceeds database size"));
            }
            let mut offsets = Vec::with_capacity(ncl + 1);
            let mut member_idx: Vec<u32> = Vec::new();
            let mut member_dist: Vec<f32> = Vec::new();
            offsets.push(0);
            let mut members_total = 0usize;
            for _ in 0..ncl {
                let len = take_len(buf, "length")?;
                members_total =
                    members_total.checked_add(len).ok_or_else(|| bad("TI member overflow"))?;
                if members_total > n {
                    return Err(bad("TI clusters exceed database size"));
                }
                member_idx.reserve(len);
                member_dist.reserve(len);
                for _ in 0..len {
                    let idx = take(buf, 4)?.get_u32_le();
                    let dist = take(buf, 4)?.get_f32_le();
                    if u64::from(idx) >= wide(n) {
                        return Err(bad("TI member out of range"));
                    }
                    member_idx.push(idx);
                    member_dist.push(dist);
                }
                offsets.push(member_idx.len());
            }
            if members_total != n {
                return Err(bad("TI clusters do not partition the database"));
            }
            let prefix_subspaces = take_len(buf, "TI prefix subspaces")?;
            let prefix_dim = take_len(buf, "TI prefix dim")?;
            TiPartition::from_parts(
                centroids,
                offsets,
                member_idx.into(),
                member_dist.into(),
                prefix_subspaces,
                prefix_dim,
            )
            .ok_or_else(|| bad("TI boundaries are inconsistent"))
            .map(Some)
        }
        _ => Err(bad("bad TI flag")),
    }
}

fn put_strategy(buf: &mut BytesMut, strategy: SearchStrategy) {
    match strategy {
        SearchStrategy::FullScan => buf.put_u8(0),
        SearchStrategy::EarlyAbandon => buf.put_u8(1),
        SearchStrategy::TiEa { visit_frac } => {
            buf.put_u8(2);
            buf.put_f64_le(visit_frac);
        }
        SearchStrategy::Quantized => buf.put_u8(3),
    }
}

fn get_strategy(buf: &mut Bytes) -> Result<SearchStrategy, VaqError> {
    match take(buf, 1)?.get_u8() {
        0 => Ok(SearchStrategy::FullScan),
        1 => Ok(SearchStrategy::EarlyAbandon),
        2 => Ok(SearchStrategy::TiEa { visit_frac: take(buf, 8)?.get_f64_le() }),
        3 => Ok(SearchStrategy::Quantized),
        _ => Err(bad("bad strategy tag")),
    }
}

fn put_matrix(buf: &mut BytesMut, m: &Matrix) {
    buf.put_u64_le(wide(m.rows()));
    buf.put_u64_le(wide(m.cols()));
    for &v in m.as_slice() {
        buf.put_f32_le(v);
    }
}

fn get_matrix(buf: &mut Bytes) -> Result<Matrix, VaqError> {
    let rows = take_len(buf, "matrix rows")?;
    let cols = take_len(buf, "matrix cols")?;
    let total = rows
        .checked_mul(cols)
        .filter(|&t| t <= 1 << 32)
        .ok_or_else(|| VaqError::BadConfig("corrupt index file: matrix too large".into()))?;
    // Bytes first, allocation second: the dimensions are untrusted.
    let mut bytes = take(buf, checked_size(total, 4)?)?;
    let mut data = Vec::with_capacity(total);
    for _ in 0..total {
        data.push(bytes.get_f32_le());
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

fn put_f32_slice(buf: &mut BytesMut, s: &[f32]) {
    buf.put_u64_le(wide(s.len()));
    for &v in s {
        buf.put_f32_le(v);
    }
}

fn get_f32_slice(buf: &mut Bytes) -> Result<Vec<f32>, VaqError> {
    let len = take_len(buf, "length")?;
    let mut bytes = take(buf, checked_size(len, 4)?)?;
    Ok((0..len).map(|_| bytes.get_f32_le()).collect())
}

fn put_f64_slice(buf: &mut BytesMut, s: &[f64]) {
    buf.put_u64_le(wide(s.len()));
    for &v in s {
        buf.put_f64_le(v);
    }
}

fn get_f64_slice(buf: &mut Bytes) -> Result<Vec<f64>, VaqError> {
    let len = take_len(buf, "length")?;
    let mut bytes = take(buf, checked_size(len, 8)?)?;
    Ok((0..len).map(|_| bytes.get_f64_le()).collect())
}

fn put_usize_slice(buf: &mut BytesMut, s: &[usize]) {
    buf.put_u64_le(wide(s.len()));
    for &v in s {
        buf.put_u64_le(wide(v));
    }
}

fn get_usize_slice(buf: &mut Bytes) -> Result<Vec<usize>, VaqError> {
    let len = take_len(buf, "length")?;
    let mut bytes = take(buf, checked_size(len, 8)?)?;
    (0..len).map(|_| narrow(bytes.get_u64_le(), "usize element")).collect()
}

#[cfg(test)]
mod tests {
    use crate::{SearchStrategy, Vaq, VaqConfig};
    use vaq_linalg::Matrix;

    fn toy_data(n: usize) -> Matrix {
        let mut s = 77u64;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(16);
            for j in 0..16 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = ((s >> 40) as f32 / (1u32 << 23) as f32) - 1.0;
                row.push(v * 2.0 / (1.0 + j as f32 * 0.3));
            }
            rows.push(row);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn round_trip_preserves_search_results() {
        let data = toy_data(400);
        let vaq = Vaq::train(&data, &VaqConfig::new(24, 4).with_ti_clusters(16)).unwrap();
        let bytes = vaq.to_bytes();
        let back = Vaq::from_bytes(&bytes).unwrap();
        assert_eq!(back.bits(), vaq.bits());
        assert_eq!(back.len(), vaq.len());
        for i in (0..400).step_by(37) {
            let a = vaq.search(data.row(i), 7);
            let b = back.search(data.row(i), 7);
            assert_eq!(a, b, "row {i}");
            for strat in [
                SearchStrategy::FullScan,
                SearchStrategy::EarlyAbandon,
                SearchStrategy::TiEa { visit_frac: 0.5 },
            ] {
                assert_eq!(
                    vaq.search_with(data.row(i), 5, strat).unwrap().0,
                    back.search_with(data.row(i), 5, strat).unwrap().0
                );
            }
        }
    }

    #[test]
    fn round_trip_without_ti_partition() {
        let data = toy_data(120);
        let vaq = Vaq::train(&data, &VaqConfig::new(16, 4).with_ti_clusters(0)).unwrap();
        let back = Vaq::from_bytes(&vaq.to_bytes()).unwrap();
        assert!(back.ti().is_none());
        assert_eq!(vaq.search(data.row(3), 5), back.search(data.row(3), 5));
    }

    #[test]
    fn save_load_file() {
        let data = toy_data(150);
        let vaq = Vaq::train(&data, &VaqConfig::new(16, 4).with_ti_clusters(8)).unwrap();
        let dir = std::env::temp_dir().join("vaq-persist-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.vaq");
        vaq.save(&path).unwrap();
        let back = Vaq::load(&path).unwrap();
        assert_eq!(vaq.search(data.row(0), 3), back.search(data.row(0), 3));
    }

    #[test]
    fn rejects_corrupted_files() {
        let data = toy_data(100);
        let vaq = Vaq::train(&data, &VaqConfig::new(16, 4).with_ti_clusters(8)).unwrap();
        let mut bytes = vaq.to_bytes();

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(Vaq::from_bytes(&bad).is_err());

        // Truncation at every 97th byte must error, never panic.
        let mut at = 5;
        while at < bytes.len() {
            assert!(Vaq::from_bytes(&bytes[..at]).is_err(), "truncated at {at}");
            at += 97;
        }

        // Flipping a code to an out-of-dictionary value must be caught.
        // (Codes sit after the header; find a u16 region by corrupting the
        // tail region before the TI flag — easiest robust check: flip all
        // bytes, which cannot parse cleanly.)
        for b in bytes.iter_mut() {
            *b = b.wrapping_add(13);
        }
        assert!(Vaq::from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_byte_patched_oversized_code() {
        let data = toy_data(100);
        let mut vaq = Vaq::train(&data, &VaqConfig::new(16, 4).with_ti_clusters(8)).unwrap();
        let mut clean = vaq.to_bytes();

        // Locate `codes[0]` in the stream without hard-coding the layout:
        // re-serialize with that code nudged to a different in-range value
        // and diff. The first differing byte is the low byte of its LE u16.
        let rows = vaq.encoder.codebooks()[0].rows() as u16;
        vaq.codes[0] = (vaq.codes[0] + 1) % rows;
        let nudged = vaq.to_bytes();
        let off = clean.iter().zip(&nudged).position(|(a, b)| a != b).unwrap();

        // Patch the clean file so the code points past every dictionary.
        clean[off] = 0xff;
        clean[off + 1] = 0xff;
        match Vaq::from_bytes(&clean).unwrap_err() {
            crate::VaqError::BadConfig(msg) => {
                assert!(msg.contains("code exceeds dictionary size"), "{msg}");
            }
            other => panic!("expected BadConfig, got {other:?}"),
        }
    }

    #[test]
    fn quantized_default_strategy_round_trips() {
        let data = toy_data(200);
        let mut vaq = Vaq::train(&data, &VaqConfig::new(24, 4).with_ti_clusters(8)).unwrap();
        vaq.default_strategy = SearchStrategy::Quantized;
        let back = Vaq::from_bytes(&vaq.to_bytes()).unwrap();
        assert_eq!(back.default_strategy, SearchStrategy::Quantized);
        assert!(back.packed.is_active(), "packing must be rebuilt on load");
        for i in (0..200).step_by(41) {
            assert_eq!(vaq.search(data.row(i), 5), back.search(data.row(i), 5), "row {i}");
        }
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(Vaq::load(std::path::Path::new("/nonexistent/vaq.idx")).is_err());
    }

    mod segmented {
        use super::toy_data;
        use crate::segment::{SegmentPolicy, SegmentedVaq};
        use crate::{SearchStrategy, Vaq, VaqConfig};
        use vaq_linalg::Matrix;

        fn policy() -> SegmentPolicy {
            SegmentPolicy::default()
                .with_seal_threshold(40)
                .with_compact_min_segments(3)
                .with_ti_clusters(6)
                .sequential()
        }

        /// A segmented index with several sealed segments, tombstones in
        /// both a segment and the buffer, and a non-empty buffer.
        fn populated() -> (SegmentedVaq, Matrix) {
            let data = toy_data(300);
            let train = data.select_rows(&(0..150).collect::<Vec<_>>());
            let rest = data.select_rows(&(150..300).collect::<Vec<_>>());
            let seg =
                SegmentedVaq::train(&train, &VaqConfig::new(24, 4).with_ti_clusters(16), policy())
                    .unwrap();
            // Chunks of 15 against a threshold of 40: two seals fire and
            // the last 15 rows stay in the write buffer.
            for chunk in rest.as_slice().chunks(15 * rest.cols()) {
                let m = Matrix::from_vec(chunk.len() / rest.cols(), rest.cols(), chunk.to_vec());
                seg.add(&m).unwrap();
            }
            seg.delete(7); // sealed row
            seg.delete(295); // buffered row
            (seg, data)
        }

        #[test]
        fn vaq2_round_trip_preserves_state_and_results() {
            let (seg, data) = populated();
            let bytes = seg.to_bytes();
            let back = SegmentedVaq::from_bytes(&bytes).unwrap();
            assert_eq!(back.len(), seg.len());
            assert_eq!(back.snapshot().num_segments(), seg.snapshot().num_segments());
            assert_eq!(back.snapshot().buffer_len(), seg.snapshot().buffer_len());
            assert_eq!(back.policy().seal_threshold, 40);
            assert_eq!(back.policy().compact_min_segments, 3);
            assert!(!back.policy().background);
            assert!(!back.contains(7) && !back.contains(295));
            for i in (0..300).step_by(41) {
                for strat in [
                    SearchStrategy::FullScan,
                    SearchStrategy::TiEa { visit_frac: 1.0 },
                    SearchStrategy::Quantized,
                ] {
                    assert_eq!(
                        seg.search_with(data.row(i), 7, strat).unwrap().0,
                        back.search_with(data.row(i), 7, strat).unwrap().0,
                        "row {i} {strat:?}"
                    );
                }
            }
            // Appends keep working on the loaded index (next_id restored).
            let pre = back.len();
            let ids = back.add(&toy_data(3)).unwrap();
            assert!(ids.iter().all(|&id| id >= 300), "{ids:?}");
            assert_eq!(back.len(), pre + 3);
        }

        #[test]
        fn legacy_vaq1_file_loads_as_one_sealed_segment() {
            let data = toy_data(250);
            let vaq = Vaq::train(&data, &VaqConfig::new(24, 4).with_ti_clusters(16)).unwrap();
            let back = SegmentedVaq::from_bytes(&vaq.to_bytes()).unwrap();
            assert_eq!(back.len(), 250);
            assert_eq!(back.snapshot().num_segments(), 1);
            assert_eq!(back.snapshot().buffer_len(), 0);
            for i in (0..250).step_by(23) {
                for strat in [
                    SearchStrategy::FullScan,
                    SearchStrategy::EarlyAbandon,
                    SearchStrategy::TiEa { visit_frac: 0.5 },
                    SearchStrategy::Quantized,
                ] {
                    assert_eq!(
                        vaq.search_with(data.row(i), 9, strat).unwrap().0,
                        back.search_with(data.row(i), 9, strat).unwrap().0,
                        "row {i} {strat:?}"
                    );
                }
            }
        }

        #[test]
        fn save_load_file_round_trips() {
            let (seg, data) = populated();
            let dir = std::env::temp_dir().join("vaq-persist-tests");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("index.vaq2");
            seg.save(&path).unwrap();
            let back = SegmentedVaq::load(&path).unwrap();
            assert_eq!(seg.search(data.row(9), 5).unwrap(), back.search(data.row(9), 5).unwrap());
        }

        #[test]
        fn rejects_corrupted_manifests() {
            let (seg, _) = populated();
            let mut bytes = seg.to_bytes();

            // Bad magic.
            let mut bad = bytes.clone();
            bad[3] = b'9';
            assert!(SegmentedVaq::from_bytes(&bad).is_err());

            // Truncation at every 89th byte must error, never panic.
            let mut at = 5;
            while at < bytes.len() {
                assert!(SegmentedVaq::from_bytes(&bytes[..at]).is_err(), "truncated at {at}");
                at += 89;
            }

            // Wholesale byte shift cannot parse cleanly.
            for b in bytes.iter_mut() {
                *b = b.wrapping_add(13);
            }
            assert!(SegmentedVaq::from_bytes(&bytes).is_err());
        }

        #[test]
        fn over_threshold_buffer_is_sealed_on_load() {
            // A manifest can carry a buffer at or above the seal threshold
            // (serialized mid-ingest, or with a policy edit). Use a marker
            // threshold value, locate its unique encoding in the stream,
            // and shrink it below the buffered row count.
            let marker = 0x00DE_AD17u64;
            let data = toy_data(120);
            let seg = SegmentedVaq::train(
                &data,
                &VaqConfig::new(24, 4).with_ti_clusters(8),
                SegmentPolicy::default()
                    .with_seal_threshold(marker as usize)
                    .with_ti_clusters(4)
                    .sequential(),
            )
            .unwrap();
            seg.add(&toy_data(50)).unwrap();
            assert_eq!(seg.snapshot().buffer_len(), 50);
            let mut bytes = seg.to_bytes();
            let needle = marker.to_le_bytes();
            let hits: Vec<usize> = bytes
                .windows(8)
                .enumerate()
                .filter(|(_, w)| *w == needle)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(hits.len(), 1, "marker threshold must appear exactly once");
            bytes[hits[0]..hits[0] + 8].copy_from_slice(&8u64.to_le_bytes());

            let back = SegmentedVaq::from_bytes(&bytes).unwrap();
            assert_eq!(back.policy().seal_threshold, 8);
            assert!(back.snapshot().buffer_len() < 8, "loader must re-seal the buffer");
            assert_eq!(back.len(), seg.len());
            assert_eq!(seg.search(data.row(5), 6).unwrap(), back.search(data.row(5), 6).unwrap());
        }

        #[test]
        fn tombstone_accounting_corruption_is_rejected() {
            let (seg, _) = populated();
            let clean = seg.to_bytes();
            // Nudge the buffer's trailing tombstone word (the very end of
            // the stream holds the buffer bitmap): flipping a bit there
            // breaks the popcount/dead agreement.
            let mut bytes = clean.clone();
            let last = bytes.len() - 1;
            bytes[last] ^= 0x40;
            let err = SegmentedVaq::from_bytes(&bytes);
            assert!(err.is_err(), "corrupted tombstone bitmap accepted");
        }

        #[test]
        fn huge_claimed_extent_count_is_rejected_before_the_body_read() {
            use bytes::BufMut;
            // A tiny file whose correctly-checksummed header claims an
            // absurd extent count: the loaders must reject it from the
            // header-vs-length check, before any body-sized work.
            for (magic, name) in [(*b"VAQ3", "huge.vaq3"), (*b"VAQ4", "huge.vaq4")] {
                let mut head = bytes::BytesMut::new();
                head.put_slice(&magic);
                head.put_u32_le(1); // version
                head.put_u8(2); // segmented
                head.put_u64_le(0); // wal_seq
                head.put_u64_le(u64::MAX / 32); // claimed extents
                let crc = crate::crc::crc32c(&head);
                head.put_u32_le(crc);
                let path = vaq4_dir("hostile").join(name);
                std::fs::write(&path, &head).unwrap();
                let err = SegmentedVaq::load(&path).expect_err("hostile header accepted");
                assert!(
                    format!("{err}").contains("extent count"),
                    "wrong rejection for {name}: {err}"
                );
                assert!(SegmentedVaq::open_durable(&path).is_err());
                assert!(Vaq::load(&path).is_err());
            }
            // Garbage magic is rejected without reading the body either.
            let path = vaq4_dir("hostile").join("junk.idx");
            std::fs::write(&path, b"ZZZZ here is not an index").unwrap();
            assert!(SegmentedVaq::load(&path).is_err());
        }

        fn vaq4_dir(name: &str) -> std::path::PathBuf {
            let dir = std::env::temp_dir().join("vaq-persist-vaq4").join(name);
            std::fs::create_dir_all(&dir).unwrap();
            dir
        }

        #[test]
        fn vaq4_mapped_answers_match_owned() {
            let (seg, data) = populated();
            let path = vaq4_dir("parity").join("index.vaq4");
            seg.save_mapped(&path).unwrap();
            let mapped = SegmentedVaq::open_mapped(&path).unwrap();
            // `load` on a VAQ4 file takes the owned parse (eager CRCs +
            // full audit) — the reference the mapped path must match.
            let owned = SegmentedVaq::load(&path).unwrap();
            assert_eq!(mapped.len(), seg.len());
            assert_eq!(mapped.snapshot().num_segments(), seg.snapshot().num_segments());
            assert!(!mapped.contains(7) && !mapped.contains(295));
            for i in (0..300).step_by(29) {
                for strat in [
                    SearchStrategy::FullScan,
                    SearchStrategy::EarlyAbandon,
                    SearchStrategy::TiEa { visit_frac: 1.0 },
                    SearchStrategy::TiEa { visit_frac: 0.4 },
                    SearchStrategy::Quantized,
                ] {
                    let (mn, ms) = mapped.search_with(data.row(i), 7, strat).unwrap();
                    let (on, os) = owned.search_with(data.row(i), 7, strat).unwrap();
                    assert_eq!(mn, on, "row {i} {strat:?}");
                    assert_eq!(ms, os, "row {i} {strat:?} stats");
                    assert_eq!(mn, seg.search_with(data.row(i), 7, strat).unwrap().0);
                }
            }
        }

        #[test]
        fn vaq4_mapped_index_audits_clean_and_stays_writable() {
            use crate::audit::Audit;
            let (seg, data) = populated();
            let path = vaq4_dir("mutate").join("index.vaq4");
            seg.save_mapped(&path).unwrap();
            let mapped = SegmentedVaq::open_mapped(&path).unwrap();
            let report = mapped.audit();
            assert!(report.is_ok(), "{report}");
            // Deletes copy the mapped bitmap out (copy-on-write) and
            // appends land in the owned buffer; neither touches the file.
            assert!(mapped.delete(11));
            assert!(!mapped.contains(11));
            let ids = mapped.add(&toy_data(3)).unwrap();
            assert!(ids.iter().all(|&id| id >= 300), "{ids:?}");
            let before = std::fs::read(&path).unwrap();
            assert_eq!(seg.search(data.row(3), 5).unwrap().len(), 5);
            assert_eq!(std::fs::read(&path).unwrap(), before, "file mutated");
        }

        #[test]
        fn vaq4_open_mapped_on_legacy_file_degrades_to_owned() {
            let (seg, data) = populated();
            let path = vaq4_dir("legacy").join("index.vaq2");
            seg.save(&path).unwrap();
            let back = SegmentedVaq::open_mapped(&path).unwrap();
            assert_eq!(seg.search(data.row(9), 5).unwrap(), back.search(data.row(9), 5).unwrap());
        }

        #[test]
        fn vaq4_rejects_corruption_in_every_extent() {
            let (seg, _) = populated();
            let path = vaq4_dir("corrupt").join("index.vaq4");
            seg.save_mapped(&path).unwrap();
            let clean = std::fs::read(&path).unwrap();
            // Flip one byte at a stride of 512, skipping only the
            // inter-extent alignment padding (those zeros carry no data
            // and no checksum). Whatever a flip lands on — header, table,
            // or any extent — the owned parse must reject it, and the
            // mapped path must reject it either at open or at first
            // search (lazy verification), never mis-answer.
            let t = super::super::get_vaq4_table(&clean).unwrap();
            let covered = |at: usize| {
                at < super::super::HEADER_CRC_SPAN
                    + 4
                    + t.extents.len() * super::super::VAQ4_TABLE_ENTRY
                    + 4
                    || t.extents.iter().any(|e| (e.offset..e.offset + e.len).contains(&at))
            };
            for at in (0..clean.len()).step_by(512).filter(|&at| covered(at)) {
                let mut bytes = clean.clone();
                bytes[at] ^= 0x20;
                assert!(
                    SegmentedVaq::from_bytes(&bytes).is_err(),
                    "owned parse accepted a flip at {at}"
                );
                std::fs::write(&path, &bytes).unwrap();
                let searched = SegmentedVaq::open_mapped(&path)
                    .and_then(|m| m.search_with(&[0.0; 16], 5, SearchStrategy::Quantized));
                assert!(searched.is_err(), "mapped open searched a flip at {at}");
            }
            // Truncations must be rejected up front by the table check.
            for at in (1..clean.len()).step_by(997) {
                assert!(SegmentedVaq::from_bytes(&clean[..at]).is_err(), "truncated at {at}");
            }
        }
    }
}
