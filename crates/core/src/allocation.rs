//! Adaptive bit allocation (paper §III-C, Algorithm 2).
//!
//! Given the variance share `w_i` of each (importance-ordered) subspace and
//! a total budget `B`, find integer bits `y_i` maximizing `Σ w_i·y_i`
//! subject to the four constraints the paper lists:
//!
//! * **C1 (coverage)** — every subspace participates: `y_i ≥ MinBits ≥ 1`,
//!   so all target variance is explained rather than collapsing onto the
//!   top subspace (extreme dimensionality reduction).
//! * **C2 (bounds)** — `MinBits ≤ y_i ≤ MaxBits`.
//! * **C3 (budget)** — `Σ y_i = B`, exactly.
//! * **C4 (proportionality)** — the budget is "allocated proportionally to
//!   the contribution of each subspace in explaining the overall
//!   variance".
//!
//! The key modeling choice (the paper leaves the constraint matrix to its
//! code release) is that the *variance a dictionary explains saturates*:
//! doubling a dictionary shrinks the residual it leaves, so the marginal
//! value of bit `j` decays geometrically. We express this concave utility
//! in exact MILP form by decomposing `y_i` into unit bit variables with
//! geometrically decreasing objective weights (`w_i · γ^{j−1}`, γ = ½) and
//! chain constraints — the classical reverse-water-filling shape, where a
//! subspace's allocation tracks the *log* of its variance share. A naive
//! linear objective `Σ w_i y_i` would instead slam the top subspaces to
//! `MaxBits` and starve the tail, which measurably destroys recall.
//!
//! The program is solved exactly with the workspace's branch-and-bound MILP
//! solver ([`vaq_milp`]); the paper notes this takes "a fraction of a
//! second", which holds here too (the LP relaxation is nearly integral).

use crate::{faults, VaqError};
use vaq_milp::{solve_milp, Cmp, Model, Objective, SolveError};

/// How to allocate bits to subspaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationStrategy {
    /// The paper's MILP-based adaptive allocation.
    Adaptive,
    /// Uniform `B/m` bits per subspace (the PQ/OPQ baseline behaviour,
    /// used in the Figure 9 ablation).
    Uniform,
}

/// Allocates `budget` bits over subspaces with variance shares `w`
/// (descending), each receiving between `min_bits` and `max_bits`.
///
/// Returns the per-subspace bit counts (aligned with `w`).
pub fn allocate_bits(
    w: &[f64],
    budget: usize,
    min_bits: usize,
    max_bits: usize,
    strategy: AllocationStrategy,
) -> Result<Vec<usize>, VaqError> {
    let m = w.len();
    if m == 0 {
        return Err(VaqError::BadConfig("no subspaces to allocate".into()));
    }
    if min_bits == 0 || min_bits > max_bits || max_bits > 16 {
        return Err(VaqError::BadConfig(format!(
            "bit bounds {min_bits}..={max_bits} invalid (need 1 ≤ min ≤ max ≤ 16)"
        )));
    }
    if budget < m * min_bits || budget > m * max_bits {
        return Err(VaqError::InfeasibleBudget { budget, subspaces: m, min_bits, max_bits });
    }
    match strategy {
        AllocationStrategy::Uniform => Ok(uniform_allocation(m, budget, min_bits, max_bits)),
        AllocationStrategy::Adaptive => adaptive_allocation(w, budget, min_bits, max_bits),
    }
}

/// `B/m` per subspace, remainder to the most important (earliest) ones,
/// clamped into bounds.
fn uniform_allocation(m: usize, budget: usize, min_bits: usize, max_bits: usize) -> Vec<usize> {
    let base = (budget / m).clamp(min_bits, max_bits);
    let mut out = vec![base; m];
    let mut assigned: usize = base * m;
    // Distribute remainder forward, respecting max_bits.
    let mut i = 0;
    while assigned < budget {
        if out[i] < max_bits {
            out[i] += 1;
            assigned += 1;
        }
        i = (i + 1) % m;
    }
    // Pull back overshoot from the tail, respecting min_bits.
    let mut j = m;
    while assigned > budget {
        j = if j == 0 { m - 1 } else { j - 1 };
        if out[j] > min_bits {
            out[j] -= 1;
            assigned -= 1;
        }
    }
    out
}

/// Per-bit diminishing-returns factor: the `j`-th bit granted to a
/// subspace captures `γ^{j-1}` as much new variance as the first. `γ =
/// 1/2` is the classical high-resolution quantization shape (each extra
/// index bit roughly halves the residual a dictionary leaves).
const GAMMA: f64 = 0.5;

/// The marginal utility of granting bit number `j` (1-based) to a
/// subspace with variance share `w`.
#[inline]
fn marginal_gain(w: f64, j: usize) -> f64 {
    w * GAMMA.powi(j as i32 - 1)
}

fn adaptive_allocation(
    w: &[f64],
    budget: usize,
    min_bits: usize,
    max_bits: usize,
) -> Result<Vec<usize>, VaqError> {
    let m = w.len();
    let total_w: f64 = w.iter().map(|v| v.abs()).sum::<f64>().max(1e-12);
    let shares: Vec<f64> = w.iter().map(|v| v.abs() / total_w).collect();

    // The paper's objective — maximize the variance explained *across* all
    // subspaces (P1) and *per* subspace (P2) — is concave in the bits: the
    // variance a dictionary of 2^b items captures saturates as b grows.
    // We express that exactly in MILP form by decomposing each y_i into
    // unit "bit" variables z_{i,j} ∈ {0,1} with geometrically decreasing
    // objective weights (piecewise-linear concave utility). C1 (coverage)
    // and C2 (bounds) pin the first `min_bits` z's to 1 and provide only
    // `max_bits − min_bits` optional ones; C3 is the single budget row;
    // C4 (proportionality) is enforced by the chain z_{i,j} ≥ z_{i,j+1},
    // which with the decreasing weights makes the optimum track the
    // classical reverse-water-filling allocation — bits proportional to
    // log variance share.
    let mut model = Model::new(Objective::Maximize);
    let extra = max_bits - min_bits;
    // z[i][j] = whether subspace i receives its (min_bits + j + 1)-th bit.
    let mut z = vec![Vec::with_capacity(extra); m];
    for (i, &share) in shares.iter().enumerate() {
        for j in 0..extra {
            let gain = marginal_gain(share.max(1e-12), min_bits + j + 1);
            z[i].push(model.add_int_var(0.0, 1.0, gain));
        }
    }
    // C3: exact budget over the optional bits.
    let remaining = budget - m * min_bits;
    model.add_constraint(
        z.iter().flatten().map(|&v| (v, 1.0)).collect(),
        Cmp::Eq,
        remaining as f64,
    );
    // C4 chain: a subspace's (j+1)-th optional bit requires its j-th.
    for zi in &z {
        for j in 1..zi.len() {
            model.add_constraint(vec![(zi[j - 1], 1.0), (zi[j], -1.0)], Cmp::Ge, 0.0);
        }
    }

    let solved = if faults::fired("allocation.milp") {
        Err(SolveError::LimitReached { what: "injected branch-and-bound node" })
    } else {
        solve_milp(&model)
    };
    let sol = match solved {
        Ok(sol) => {
            if !sol.optimal {
                faults::note_degradation("allocation.milp: anytime incumbent used");
            }
            sol
        }
        // Unconstrained allocation always has the greedy marginal-gain
        // allocator as a feasible, bound-respecting stand-in, so a solver
        // failure degrades the objective slightly instead of failing the
        // whole training run.
        Err(SolveError::Infeasible | SolveError::LimitReached { .. }) => {
            faults::note_degradation("allocation.milp: greedy variance-proportional fallback");
            return Ok(greedy_allocation(w, budget, min_bits, max_bits));
        }
        Err(e) => return Err(e.into()),
    };
    let bits: Vec<usize> = z
        .iter()
        .map(|zi| min_bits + zi.iter().map(|&v| sol.values[v].round() as usize).sum::<usize>())
        .collect();
    debug_assert_eq!(bits.iter().sum::<usize>(), budget);
    Ok(bits)
}

/// An extra requirement imposed on the bit allocation.
///
/// The paper motivates the MILP formulation precisely by this kind of
/// extensibility (§III-C): "new constraints can impose restrictions to
/// used subspaces and bit allocations in order to meet specific runtime
/// and storage service agreements", and external models may supply
/// importance weights ("the integration of the new weights becomes
/// trivial"). Each variant adds rows or reweights the objective of the
/// same program — no new solver.
#[derive(Debug, Clone, PartialEq)]
pub enum AllocationConstraint {
    /// Force subspace `subspace` to exactly `bits` bits.
    Pin {
        /// Subspace index.
        subspace: usize,
        /// Exact bit count.
        bits: usize,
    },
    /// Cap subspace `subspace` at `bits` bits (e.g. keep its dictionary in
    /// a cache level).
    CapSubspace {
        /// Subspace index.
        subspace: usize,
        /// Maximum bit count.
        bits: usize,
    },
    /// Cap the *total* number of dictionary items `Σ 2^{y_i}` — a storage
    /// / encoding-time service agreement. Exactly linear under the unit-bit
    /// decomposition: the `j`-th extra bit of a subspace adds
    /// `2^{min+j-1}` items, telescoping to `2^{y_i}` with the chain
    /// constraints.
    MaxTotalDictionaryItems {
        /// Upper bound on the summed dictionary sizes.
        items: usize,
    },
    /// Multiply the variance shares by external weights (e.g. supervision
    /// or query-workload statistics) before optimizing.
    WeightOverride {
        /// One multiplier per subspace.
        weights: Vec<f64>,
    },
}

/// [`allocate_bits`] with additional [`AllocationConstraint`]s — the
/// "query optimizer" entry point. Only the adaptive (MILP) strategy
/// supports extra constraints.
pub fn allocate_bits_constrained(
    w: &[f64],
    budget: usize,
    min_bits: usize,
    max_bits: usize,
    constraints: &[AllocationConstraint],
) -> Result<Vec<usize>, VaqError> {
    let m = w.len();
    if m == 0 {
        return Err(VaqError::BadConfig("no subspaces to allocate".into()));
    }
    if min_bits == 0 || min_bits > max_bits || max_bits > 16 {
        return Err(VaqError::BadConfig(format!(
            "bit bounds {min_bits}..={max_bits} invalid (need 1 ≤ min ≤ max ≤ 16)"
        )));
    }
    if budget < m * min_bits || budget > m * max_bits {
        return Err(VaqError::InfeasibleBudget { budget, subspaces: m, min_bits, max_bits });
    }
    // Apply weight overrides up front.
    let mut shares: Vec<f64> = {
        let total: f64 = w.iter().map(|v| v.abs()).sum::<f64>().max(1e-12);
        w.iter().map(|v| v.abs() / total).collect()
    };
    for c in constraints {
        if let AllocationConstraint::WeightOverride { weights } = c {
            if weights.len() != m {
                return Err(VaqError::BadConfig(format!(
                    "weight override has {} entries for {m} subspaces",
                    weights.len()
                )));
            }
            for (s, &wt) in shares.iter_mut().zip(weights.iter()) {
                *s *= wt.max(0.0);
            }
        }
    }

    let mut model = Model::new(Objective::Maximize);
    let extra = max_bits - min_bits;
    let mut z = vec![Vec::with_capacity(extra); m];
    for (i, &share) in shares.iter().enumerate() {
        for j in 0..extra {
            let gain = marginal_gain(share.max(1e-12), min_bits + j + 1);
            z[i].push(model.add_int_var(0.0, 1.0, gain));
        }
    }
    let remaining = budget - m * min_bits;
    model.add_constraint(
        z.iter().flatten().map(|&v| (v, 1.0)).collect(),
        Cmp::Eq,
        remaining as f64,
    );
    for zi in &z {
        for j in 1..zi.len() {
            model.add_constraint(vec![(zi[j - 1], 1.0), (zi[j], -1.0)], Cmp::Ge, 0.0);
        }
    }

    for c in constraints {
        match c {
            AllocationConstraint::Pin { subspace, bits } => {
                let s = check_subspace(*subspace, m)?;
                if *bits < min_bits || *bits > max_bits {
                    return Err(VaqError::BadConfig(format!(
                        "pin of {bits} bits outside {min_bits}..={max_bits}"
                    )));
                }
                // Exactly bits − min_bits optional bits taken.
                model.add_constraint(
                    z[s].iter().map(|&v| (v, 1.0)).collect(),
                    Cmp::Eq,
                    (*bits - min_bits) as f64,
                );
            }
            AllocationConstraint::CapSubspace { subspace, bits } => {
                let s = check_subspace(*subspace, m)?;
                model.add_constraint(
                    z[s].iter().map(|&v| (v, 1.0)).collect(),
                    Cmp::Le,
                    bits.saturating_sub(min_bits) as f64,
                );
            }
            AllocationConstraint::MaxTotalDictionaryItems { items } => {
                // Under the chain constraints the (j+1)-th optional bit
                // doubles a dictionary from 2^{min+j} to 2^{min+j+1},
                // adding exactly 2^{min+j} items — so the total dictionary
                // size Σ 2^{y_i} telescopes into one linear row:
                // m·2^{min} + Σ_{i,j} 2^{min+j}·z_{i,j} ≤ items.
                let base = m as f64 * (1u64 << min_bits) as f64;
                let mut rows: Vec<(usize, f64)> = Vec::new();
                for zi in &z {
                    for (j, &v) in zi.iter().enumerate() {
                        rows.push((v, (1u64 << (min_bits + j)) as f64));
                    }
                }
                model.add_constraint(rows, Cmp::Le, (*items as f64 - base).max(0.0));
            }
            AllocationConstraint::WeightOverride { .. } => {} // handled above
        }
    }

    // No greedy fallback here: extra constraints (pins, caps, SLAs) are
    // promises to the caller, and the greedy allocator cannot honor them —
    // infeasibility must surface as a typed error instead.
    let sol = solve_milp(&model).map_err(|e| match e {
        SolveError::Infeasible => VaqError::BadConfig(
            "allocation constraints are jointly infeasible with the budget".into(),
        ),
        other => VaqError::Solve(other),
    })?;
    if !sol.optimal {
        faults::note_degradation("allocation.milp: anytime incumbent used");
    }
    let bits: Vec<usize> = z
        .iter()
        .map(|zi| min_bits + zi.iter().map(|&v| sol.values[v].round() as usize).sum::<usize>())
        .collect();
    Ok(bits)
}

fn check_subspace(s: usize, m: usize) -> Result<usize, VaqError> {
    if s >= m {
        return Err(VaqError::BadConfig(format!("constraint references subspace {s} of {m}")));
    }
    Ok(s)
}

/// Greedy marginal-gain allocation — provably optimal for this concave
/// utility under a single budget constraint, used as a test oracle for
/// the MILP and as a fast path when no extra constraints are present.
pub fn greedy_allocation(w: &[f64], budget: usize, min_bits: usize, max_bits: usize) -> Vec<usize> {
    let m = w.len();
    let total_w: f64 = w.iter().map(|v| v.abs()).sum::<f64>().max(1e-12);
    let shares: Vec<f64> = w.iter().map(|v| v.abs() / total_w).collect();
    let mut bits = vec![min_bits; m];
    let mut remaining = budget - m * min_bits;
    while remaining > 0 {
        // Best next bit by marginal gain; ties go to the earlier subspace.
        let mut best = None;
        let mut best_gain = f64::NEG_INFINITY;
        for i in 0..m {
            if bits[i] < max_bits {
                let g = marginal_gain(shares[i].max(1e-12), bits[i] + 1);
                if g > best_gain {
                    best_gain = g;
                    best = Some(i);
                }
            }
        }
        // `budget ≤ m·max_bits` was validated by every caller, so a slot
        // below `max_bits` always exists; if that contract is ever
        // broken, returning the bits placed so far degrades the
        // allocation instead of panicking mid-train.
        let Some(i) = best else { break };
        bits[i] += 1;
        remaining -= 1;
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steep(m: usize) -> Vec<f64> {
        let raw: Vec<f64> = (0..m).map(|i| (0.5f64).powi(i as i32)).collect();
        let t: f64 = raw.iter().sum();
        raw.into_iter().map(|v| v / t).collect()
    }

    fn flat(m: usize) -> Vec<f64> {
        vec![1.0 / m as f64; m]
    }

    #[test]
    fn respects_budget_and_bounds() {
        for &(m, budget) in &[(8usize, 64usize), (16, 128), (32, 256), (4, 20)] {
            let bits =
                allocate_bits(&steep(m), budget, 1, 13, AllocationStrategy::Adaptive).unwrap();
            assert_eq!(bits.iter().sum::<usize>(), budget, "m={m} B={budget}");
            assert!(bits.iter().all(|&b| (1..=13).contains(&b)), "{bits:?}");
        }
    }

    #[test]
    fn skewed_shares_get_skewed_bits() {
        let bits = allocate_bits(&steep(8), 40, 1, 13, AllocationStrategy::Adaptive).unwrap();
        assert!(bits[0] > bits[7], "most important subspace must get more bits: {bits:?}");
        // Monotone non-increasing (C4 ordering).
        for w in bits.windows(2) {
            assert!(w[0] >= w[1], "{bits:?}");
        }
    }

    #[test]
    fn flat_shares_get_near_uniform_bits() {
        let bits = allocate_bits(&flat(8), 64, 1, 13, AllocationStrategy::Adaptive).unwrap();
        let min = bits.iter().min().unwrap();
        let max = bits.iter().max().unwrap();
        assert!(max - min <= 2, "flat spectrum should allocate near-uniformly: {bits:?}");
    }

    #[test]
    fn proportionality_caps_prevent_hoarding() {
        // Without C4 the top subspace would take max_bits; with the prefix
        // caps its allocation tracks its variance share.
        let mut w = vec![0.30f64];
        w.extend(vec![0.10; 7]);
        let bits = allocate_bits(&w, 32, 1, 13, AllocationStrategy::Adaptive).unwrap();
        // 30% of 32 ≈ 9.6 + slack 4 ⇒ the first subspace is capped well
        // below max_bits.
        assert!(bits[0] <= 13);
        assert!(bits[0] >= 4, "top subspace too starved: {bits:?}");
        assert!(bits.iter().skip(1).all(|&b| b >= 1));
        assert_eq!(bits.iter().sum::<usize>(), 32);
    }

    #[test]
    fn uniform_strategy_divides_evenly() {
        let bits = allocate_bits(&steep(8), 64, 1, 13, AllocationStrategy::Uniform).unwrap();
        assert_eq!(bits, vec![8; 8]);
    }

    #[test]
    fn uniform_strategy_handles_remainder() {
        let bits = allocate_bits(&steep(8), 67, 1, 13, AllocationStrategy::Uniform).unwrap();
        assert_eq!(bits.iter().sum::<usize>(), 67);
        assert_eq!(bits[..3], [9, 9, 9]);
        assert_eq!(bits[3..], [8, 8, 8, 8, 8]);
    }

    #[test]
    fn infeasible_budgets_rejected() {
        assert!(matches!(
            allocate_bits(&flat(8), 7, 1, 13, AllocationStrategy::Adaptive),
            Err(VaqError::InfeasibleBudget { .. })
        ));
        assert!(matches!(
            allocate_bits(&flat(8), 200, 1, 13, AllocationStrategy::Adaptive),
            Err(VaqError::InfeasibleBudget { .. })
        ));
    }

    #[test]
    fn bad_bounds_rejected() {
        assert!(allocate_bits(&flat(4), 16, 0, 13, AllocationStrategy::Adaptive).is_err());
        assert!(allocate_bits(&flat(4), 16, 5, 4, AllocationStrategy::Adaptive).is_err());
        assert!(allocate_bits(&flat(4), 16, 1, 20, AllocationStrategy::Adaptive).is_err());
        assert!(allocate_bits(&[], 16, 1, 13, AllocationStrategy::Adaptive).is_err());
    }

    #[test]
    fn tight_budget_forces_min_bits_everywhere() {
        let bits = allocate_bits(&steep(8), 8, 1, 13, AllocationStrategy::Adaptive).unwrap();
        assert_eq!(bits, vec![1; 8]);
    }

    #[test]
    fn full_budget_forces_max_bits_everywhere() {
        let bits = allocate_bits(&steep(4), 52, 1, 13, AllocationStrategy::Adaptive).unwrap();
        assert_eq!(bits, vec![13; 4]);
    }

    #[test]
    fn constrained_pin_is_respected() {
        let w = steep(8);
        let bits = allocate_bits_constrained(
            &w,
            40,
            1,
            13,
            &[AllocationConstraint::Pin { subspace: 3, bits: 2 }],
        )
        .unwrap();
        assert_eq!(bits[3], 2);
        assert_eq!(bits.iter().sum::<usize>(), 40);
    }

    #[test]
    fn constrained_cap_is_respected() {
        let w = steep(8);
        let bits = allocate_bits_constrained(
            &w,
            40,
            1,
            13,
            &[AllocationConstraint::CapSubspace { subspace: 0, bits: 5 }],
        )
        .unwrap();
        assert!(bits[0] <= 5, "{bits:?}");
        assert_eq!(bits.iter().sum::<usize>(), 40);
    }

    #[test]
    fn dictionary_size_sla_binds() {
        let w = steep(8);
        // Unconstrained, the top subspace would take many bits (a huge
        // dictionary). Capping total items must pull allocations down.
        let unconstrained = allocate_bits_constrained(&w, 40, 1, 13, &[]).unwrap();
        let items_unconstrained: usize = unconstrained.iter().map(|&b| 1usize << b).sum();
        let cap = items_unconstrained / 2;
        let capped = allocate_bits_constrained(
            &w,
            40,
            1,
            13,
            &[AllocationConstraint::MaxTotalDictionaryItems { items: cap }],
        );
        match capped {
            Ok(bits) => {
                let items: usize = bits.iter().map(|&b| 1usize << b).sum();
                assert!(items <= cap, "SLA violated: {items} > {cap} ({bits:?})");
                assert_eq!(bits.iter().sum::<usize>(), 40);
            }
            // A cap can be jointly infeasible with the exact-budget row;
            // that must surface as a clean error.
            Err(VaqError::BadConfig(_)) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn weight_override_shifts_allocation() {
        let w = flat(8);
        // Supervision says subspace 7 matters most.
        let mut weights = vec![1.0; 8];
        weights[7] = 50.0;
        let bits = allocate_bits_constrained(
            &w,
            32,
            1,
            13,
            &[AllocationConstraint::WeightOverride { weights }],
        )
        .unwrap();
        assert!(
            bits[7] >= *bits[..7].iter().max().unwrap(),
            "overridden subspace should lead: {bits:?}"
        );
    }

    #[test]
    fn constrained_rejects_bad_references() {
        let w = flat(4);
        assert!(allocate_bits_constrained(
            &w,
            16,
            1,
            13,
            &[AllocationConstraint::Pin { subspace: 9, bits: 2 }]
        )
        .is_err());
        assert!(allocate_bits_constrained(
            &w,
            16,
            1,
            13,
            &[AllocationConstraint::WeightOverride { weights: vec![1.0; 3] }]
        )
        .is_err());
        assert!(allocate_bits_constrained(
            &w,
            16,
            1,
            13,
            &[AllocationConstraint::Pin { subspace: 0, bits: 16 }]
        )
        .is_err());
    }

    #[test]
    fn unconstrained_constrained_matches_plain_adaptive() {
        let w = steep(8);
        let a = allocate_bits(&w, 40, 1, 13, AllocationStrategy::Adaptive).unwrap();
        let b = allocate_bits_constrained(&w, 40, 1, 13, &[]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn milp_matches_greedy_oracle() {
        // The greedy marginal-gain allocator is provably optimal for the
        // concave utility under a single budget row; the MILP must find an
        // allocation of equal utility (allocations themselves may differ
        // only between subspaces with identical shares).
        for (m, budget) in [(8usize, 40usize), (16, 64), (32, 256), (6, 30)] {
            let w: Vec<f64> = (0..m).map(|i| (0.75f64).powi(i as i32)).collect();
            let milp = allocate_bits(&w, budget, 1, 13, AllocationStrategy::Adaptive).unwrap();
            let greedy = greedy_allocation(&w, budget, 1, 13);
            assert_eq!(milp, greedy, "m={m} budget={budget}");
        }
    }

    #[test]
    fn greedy_respects_bounds_and_budget() {
        let w = vec![0.9, 0.05, 0.03, 0.02];
        let bits = greedy_allocation(&w, 20, 1, 13);
        assert_eq!(bits.iter().sum::<usize>(), 20);
        assert!(bits.iter().all(|&b| (1..=13).contains(&b)));
        assert!(bits[0] > bits[3]);
    }

    #[test]
    fn paper_configuration_256_bits_32_subspaces() {
        // The paper's headline config: budget 256, 32 subspaces, 1..=13
        // bits. Must produce a genuinely variable allocation on skewed
        // spectra.
        let bits = allocate_bits(&steep(32), 256, 1, 13, AllocationStrategy::Adaptive).unwrap();
        assert_eq!(bits.iter().sum::<usize>(), 256);
        let distinct: std::collections::BTreeSet<usize> = bits.iter().copied().collect();
        assert!(distinct.len() >= 3, "expected variable sizes, got {bits:?}");
        assert!(*bits.iter().max().unwrap() > 8, "top subspace should exceed uniform 8: {bits:?}");
        assert!(*bits.iter().min().unwrap() < 8, "tail should drop below uniform 8: {bits:?}");
    }
}
