//! The shared ADC query engine (paper §III-E, Algorithm 4).
//!
//! Every ADC consumer in the workspace — flat VAQ, the IVF index, the PQ
//! family baselines, and the IMI re-ranker — runs the same loop: build one
//! lookup table per subspace, then accumulate per-code table entries under
//! some pruning regime. This module factors that loop into two pieces:
//!
//! * [`IndexView`] — a borrowed, zero-copy description of an encoded
//!   database: per-subspace dictionaries, column ranges, the flat `n × m`
//!   code array, and an optional triangle-inequality partition.
//! * [`QueryEngine`] — the reusable execution state: a flat
//!   [`TableArena`] of lookup tables plus a default [`SearchStrategy`].
//!   One engine answers any number of queries against any number of
//!   views; after the first query of a given layout, the steady state
//!   performs **zero** table allocations (observable through
//!   [`SearchStats::table_reallocations`]).
//!
//! Distances: the scan accumulates *squared* Euclidean terms (that is what
//! the tables store). `search*` take the final square root, matching
//! Algorithm 4's `distance = sqrt(distance)`; the `*_squared` variants
//! skip it for callers (PQ, IMI) whose public metric is squared Euclidean.

use crate::encoder::Encoder;
use crate::search::{Neighbor, SearchStats, SearchStrategy};
use crate::ti::TiPartition;
use std::collections::BinaryHeap;
use vaq_linalg::{
    accumulate_qsums, accumulate_qsums_multi, active_kernel, prefetch_read, squared_distances_into,
    Matrix, PackedCodes, QuantizedTables, ScanPrefetch, TableArena, QUERY_TILE,
};

/// A borrowed view of an encoded database, sufficient to execute ADC
/// queries against it. Cheap to copy; owns nothing.
#[derive(Debug, Clone, Copy)]
pub struct IndexView<'a> {
    codebooks: &'a [Matrix],
    ranges: &'a [(usize, usize)],
    codes: &'a [u16],
    n: usize,
    ti: Option<&'a TiPartition>,
    packed: Option<&'a PackedCodes>,
    /// Tombstone bitmap (bit `i` set = row `i` is deleted): dead rows are
    /// excluded from every scan and rerank path, counted as skipped.
    dead: Option<&'a [u64]>,
    /// Prefetch hints for memory-mapped storage: linear strategies declare
    /// a sequential pass, TI-pruned scans advise per visited cluster.
    /// Purely advisory — never affects results.
    prefetch: Option<&'a ScanPrefetch>,
}

impl<'a> IndexView<'a> {
    /// Views raw parts: one dictionary and one `(start, end)` column range
    /// per subspace, plus the row-major `n × m` code array.
    ///
    /// # Panics
    /// Panics if `codebooks` and `ranges` disagree in length or `codes` is
    /// not exactly `n × m` entries.
    pub fn new(
        codebooks: &'a [Matrix],
        ranges: &'a [(usize, usize)],
        codes: &'a [u16],
        n: usize,
    ) -> IndexView<'a> {
        assert_eq!(codebooks.len(), ranges.len(), "one codebook per subspace");
        assert_eq!(codes.len(), n * ranges.len(), "codes must be n × m");
        IndexView {
            codebooks,
            ranges,
            codes,
            n,
            ti: None,
            packed: None,
            dead: None,
            prefetch: None,
        }
    }

    /// Views a trained [`Encoder`] and its encoded database.
    pub fn from_encoder(encoder: &'a Encoder, codes: &'a [u16], n: usize) -> IndexView<'a> {
        IndexView::new(encoder.codebooks(), encoder.ranges(), codes, n)
    }

    /// Attaches (or detaches) a TI partition for data skipping.
    pub fn with_ti(mut self, ti: Option<&'a TiPartition>) -> IndexView<'a> {
        self.ti = ti;
        self
    }

    /// Attaches (or detaches) a blocked code packing for the quantized
    /// SIMD scan ([`SearchStrategy::Quantized`]). The packing must come
    /// from the same `codes`/`n` this view was built over.
    pub fn with_packed(mut self, packed: Option<&'a PackedCodes>) -> IndexView<'a> {
        self.packed = packed;
        self
    }

    /// The attached blocked code packing, if any.
    pub fn packed(&self) -> Option<&'a PackedCodes> {
        self.packed
    }

    /// Attaches (or detaches) a tombstone bitmap: bit `i` of
    /// `words[i / 64]` marks row `i` as deleted. Dead rows are consulted
    /// at every scan *and* rerank site — they can never enter the top-k —
    /// and are counted in [`SearchStats::vectors_skipped`].
    pub fn with_dead(mut self, dead: Option<&'a [u64]>) -> IndexView<'a> {
        self.dead = dead;
        self
    }

    /// Attaches (or detaches) prefetch hints for a segment whose extents
    /// are memory-mapped. The engine advises the kernel along the scan
    /// order it is about to take; hints never change answers.
    pub fn with_prefetch(mut self, prefetch: Option<&'a ScanPrefetch>) -> IndexView<'a> {
        self.prefetch = prefetch;
        self
    }

    /// `true` when row `i` is tombstoned. Rows past the bitmap are live.
    #[inline]
    pub fn is_dead(&self, i: usize) -> bool {
        match self.dead {
            Some(words) => words.get(i / 64).is_some_and(|w| (w >> (i % 64)) & 1 == 1),
            None => false,
        }
    }

    /// Number of subspaces `m`.
    pub fn num_subspaces(&self) -> usize {
        self.ranges.len()
    }

    /// Number of encoded vectors.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The code word of database row `i`.
    #[inline]
    pub fn code(&self, i: usize) -> &'a [u16] {
        let m = self.ranges.len();
        &self.codes[i * m..(i + 1) * m]
    }

    /// Advisory prefetch of row `i`'s code word into cache. Scan orders
    /// that visit rows non-sequentially (TI cluster order) issue this a
    /// few rows ahead, where the hardware prefetcher cannot follow.
    /// No-op off x86_64 and under Miri; never affects results.
    #[inline]
    pub fn prefetch_code(&self, i: usize) {
        prefetch_read(self.codes, i * self.ranges.len());
    }

    /// The attached TI partition, if any.
    pub fn ti(&self) -> Option<&'a TiPartition> {
        self.ti
    }

    /// Per-subspace dictionaries.
    pub fn codebooks(&self) -> &'a [Matrix] {
        self.codebooks
    }

    /// Per-subspace column ranges.
    pub fn ranges(&self) -> &'a [(usize, usize)] {
        self.ranges
    }

    /// The arena layout of this view's lookup tables.
    pub fn table_sizes(&self) -> impl Iterator<Item = usize> + 'a {
        self.codebooks.iter().map(|cb| cb.rows())
    }

    /// Fills `arena` with this view's ADC tables for a projected query.
    fn fill_tables(&self, projected_query: &[f32], arena: &mut TableArena) {
        arena.ensure_layout(self.table_sizes());
        for (s, (&(lo, hi), cb)) in self.ranges.iter().zip(self.codebooks.iter()).enumerate() {
            squared_distances_into(&projected_query[lo..hi], cb, arena.table_mut(s));
        }
    }
}

/// Reusable ADC execution state: the lookup-table arena plus a default
/// strategy. Create one per thread and reuse it across queries — the
/// arena re-fills in place, so only the first query of a layout touches
/// the heap.
#[derive(Debug, Clone)]
pub struct QueryEngine {
    arena: TableArena,
    strategy: SearchStrategy,
    /// Per-query `u8` quantization of the arena (Quantized scans only);
    /// reused across queries without reallocating.
    qtables: QuantizedTables,
    /// Scratch accumulator buffer for the quantized scan, one `u16` per
    /// (padded) database row.
    qsums: Vec<u16>,
}

impl Default for QueryEngine {
    fn default() -> Self {
        QueryEngine::new()
    }
}

impl QueryEngine {
    /// An empty engine defaulting to [`SearchStrategy::EarlyAbandon`]
    /// (exact w.r.t. the ADC ranking, needs no TI partition).
    pub fn new() -> QueryEngine {
        QueryEngine {
            arena: TableArena::new(),
            strategy: SearchStrategy::EarlyAbandon,
            qtables: QuantizedTables::new(),
            qsums: Vec::new(),
        }
    }

    /// An engine whose arena is pre-sized for `view`, so even the first
    /// query allocates nothing.
    pub fn for_view(view: &IndexView<'_>) -> QueryEngine {
        let mut engine = QueryEngine::new();
        engine.arena.ensure_layout(view.table_sizes());
        engine
    }

    /// Overrides the default strategy used by [`QueryEngine::search`].
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> QueryEngine {
        self.strategy = strategy;
        self
    }

    /// The default strategy.
    pub fn strategy(&self) -> SearchStrategy {
        self.strategy
    }

    /// Changes the default strategy in place.
    pub fn set_strategy(&mut self, strategy: SearchStrategy) {
        self.strategy = strategy;
    }

    /// The engine's table arena (tests and benches read its reallocation
    /// counter; scans read prepared tables through it).
    pub fn arena(&self) -> &TableArena {
        &self.arena
    }

    /// Fills the arena with `view`'s ADC tables for a projected query.
    /// Exposed for callers that consume the tables directly (quantized
    /// scanners, prefix ablations) rather than through a full search.
    pub fn prepare(&mut self, view: &IndexView<'_>, projected_query: &[f32]) {
        let _span = crate::obs::span("query.table_refill");
        if crate::faults::fired("engine.prepare") {
            // Treat the cached arena as corrupted: drop it and rebuild from
            // scratch. Costs one reallocation, never a wrong table.
            self.arena = TableArena::new();
            crate::faults::note_degradation("engine.prepare: table arena rebuilt");
        }
        view.fill_tables(projected_query, &mut self.arena);
        if cfg!(debug_assertions) {
            use crate::audit::Audit;
            let report = self.arena.audit();
            assert!(report.is_ok(), "table arena audit failed after prepare:\n{report}");
            assert_eq!(
                self.arena.num_tables(),
                view.num_subspaces(),
                "arena table count disagrees with the view"
            );
        }
    }

    /// Fills the arena with caller-defined tables (e.g. SDC
    /// centroid-to-centroid distances): `fill(s, table_s)` per subspace.
    pub fn prepare_with(
        &mut self,
        sizes: impl IntoIterator<Item = usize>,
        fill: impl FnMut(usize, &mut [f32]),
    ) {
        self.arena.ensure_layout(sizes);
        self.arena.fill_with(fill);
    }

    /// Searches with the engine's default strategy; unsquared distances.
    pub fn search(
        &mut self,
        view: &IndexView<'_>,
        projected_query: &[f32],
        k: usize,
    ) -> Vec<Neighbor> {
        self.search_with(view, projected_query, k, self.strategy).0
    }

    /// Searches with an explicit strategy; unsquared (metric) distances.
    pub fn search_with(
        &mut self,
        view: &IndexView<'_>,
        projected_query: &[f32],
        k: usize,
        strategy: SearchStrategy,
    ) -> (Vec<Neighbor>, SearchStats) {
        let (mut out, stats) = self.search_squared(view, projected_query, k, strategy);
        sqrt_distances(&mut out);
        (out, stats)
    }

    /// Searches with an explicit strategy, keeping *squared* distances —
    /// the PQ-family metric.
    pub fn search_squared(
        &mut self,
        view: &IndexView<'_>,
        projected_query: &[f32],
        k: usize,
        strategy: SearchStrategy,
    ) -> (Vec<Neighbor>, SearchStats) {
        let t0 = crate::obs::enabled().then(std::time::Instant::now);
        let result = self.search_squared_inner(view, projected_query, k, strategy);
        if let Some(t0) = t0 {
            crate::obs::observe_ns("query_latency", t0.elapsed().as_nanos() as u64);
            crate::obs::record_search_stats(&result.1);
        }
        result
    }

    /// The strategy dispatch behind [`QueryEngine::search_squared`],
    /// split out so the public entry can time whole-query latency across
    /// every early-return path.
    fn search_squared_inner(
        &mut self,
        view: &IndexView<'_>,
        projected_query: &[f32],
        k: usize,
        strategy: SearchStrategy,
    ) -> (Vec<Neighbor>, SearchStats) {
        let before = self.arena.reallocations();
        self.prepare(view, projected_query);
        let mut stats = SearchStats {
            table_reallocations: self.arena.reallocations() - before,
            ..SearchStats::default()
        };
        let n = view.len();
        let k = k.max(1).min(n.max(1));
        let mut heap: BinaryHeap<Neighbor> = BinaryHeap::with_capacity(k + 1);

        match strategy {
            SearchStrategy::FullScan => {
                let _scan = crate::obs::span("query.scan");
                if let Some(pf) = view.prefetch {
                    pf.advise_sequential_scan();
                }
                let m = view.num_subspaces();
                let flat = self.arena.as_slice();
                let offsets = self.arena.offsets();
                for i in 0..n {
                    if view.is_dead(i) {
                        stats.vectors_skipped += 1;
                        continue;
                    }
                    let code = view.code(i);
                    let mut dist = 0.0f32;
                    for (s, &c) in code.iter().enumerate() {
                        dist += flat[offsets[s] + c as usize];
                    }
                    stats.vectors_visited += 1;
                    stats.lookups += m;
                    push_k(&mut heap, k, i as u32, dist);
                }
            }
            SearchStrategy::EarlyAbandon => {
                let _scan = crate::obs::span("query.scan");
                if let Some(pf) = view.prefetch {
                    pf.advise_sequential_scan();
                }
                for i in 0..n {
                    scan_one(view, &self.arena, i, &mut heap, k, &mut stats);
                }
            }
            SearchStrategy::TiEa { visit_frac } => {
                let usable = match view.ti() {
                    Some(ti) if crate::faults::fired("engine.search") => {
                        crate::faults::note_degradation("engine.search: TI bypassed, EA scan");
                        let _ = ti;
                        None
                    }
                    Some(ti) if !ti_covers(ti, n) => {
                        // A partition that does not cover the database
                        // exactly once would silently drop or duplicate
                        // candidates — fall back to the exact EA scan.
                        crate::faults::note_degradation("engine.search: TI failed audit, EA scan");
                        None
                    }
                    other => other,
                };
                let Some(ti) = usable else {
                    // No (sound) partition: degrade to EA over everything.
                    let _scan = crate::obs::span("query.scan");
                    for i in 0..n {
                        scan_one(view, &self.arena, i, &mut heap, k, &mut stats);
                    }
                    return (collect_sorted(heap), stats);
                };
                let prune = crate::obs::span("query.ti_prune");
                let qd = ti.query_distances(projected_query);
                let order = ti.visit_order(&qd);
                drop(prune);
                let _scan = crate::obs::span("query.scan");
                // TI reranks member rows in cluster order, not file
                // order: tell a mapped backing store not to read ahead,
                // and fault each visited cluster's member tables in
                // ahead of its binary searches.
                if let Some(pf) = view.prefetch {
                    pf.advise_random_scan();
                }
                let visit =
                    ((visit_frac.clamp(0.0, 1.0) * order.len() as f64).ceil() as usize).max(1);
                for (vi, &ci) in order.iter().take(visit).enumerate() {
                    let ci = ci as usize;
                    if let (Some(pf), Some(&next)) = (view.prefetch, order.get(vi + 1)) {
                        let (s, e) = ti.cluster_range(next as usize);
                        pf.advise_ti_cluster(s, e);
                    }
                    let members = ti.cluster_idx(ci);
                    // Current best-so-far in metric (unsquared) space.
                    let bsf = current_threshold(&heap, k).sqrt();
                    let (lo, hi) = ti.survivor_window(ci, qd[ci], bsf);
                    stats.vectors_skipped += lo + (members.len() - hi);
                    let survivors = &members[lo..hi];
                    for (wi, &row) in survivors.iter().enumerate() {
                        if let Some(&ahead) = survivors.get(wi + 8) {
                            view.prefetch_code(ahead as usize);
                        }
                        scan_one(view, &self.arena, row as usize, &mut heap, k, &mut stats);
                    }
                }
                for &ci in order.iter().skip(visit) {
                    stats.vectors_skipped += ti.cluster_len(ci as usize);
                }
            }
            SearchStrategy::Quantized => {
                let Some(packed) = usable_packing(view) else {
                    // No usable packing (e.g. every subspace wider than 8
                    // bits): the exact early-abandon scan answers instead.
                    let _scan = crate::obs::span("query.scan");
                    for i in 0..n {
                        scan_one(view, &self.arena, i, &mut heap, k, &mut stats);
                    }
                    return (collect_sorted(heap), stats);
                };
                let qscan = crate::obs::span("query.qscan");
                if let Some(pf) = view.prefetch {
                    pf.advise_sequential_scan();
                }
                self.qtables.quantize(&self.arena, packed);
                accumulate_qsums(packed, &self.qtables, &mut self.qsums);
                drop(qscan);
                let out = self.quantized_rerank_prepared(view, k, &mut stats);
                return (out, stats);
            }
        }
        (collect_sorted(heap), stats)
    }

    /// The prune + exact-rerank tail of the quantized scan, run over
    /// already-computed `qtables`/`qsums`. Shared between the sequential
    /// [`SearchStrategy::Quantized`] arm and the batched tile path in
    /// [`QueryEngine::search_batch`], so both produce identical answers
    /// and identical [`SearchStats`].
    fn quantized_rerank_prepared(
        &self,
        view: &IndexView<'_>,
        k: usize,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        let n = view.len();
        let k = k.max(1).min(n.max(1));
        let mut heap: BinaryHeap<Neighbor> = BinaryHeap::with_capacity(k + 1);
        let _rerank = crate::obs::span("query.rerank");
        let m = view.num_subspaces();
        // Prune on the certified lower bound alone; survivors
        // rerank through the exact f32 tables. A pruned vector
        // has exact distance >= lb >= threshold, so EA would
        // have abandoned it without pushing — the heap evolves
        // identically and the top-k is byte-identical to EA's.
        // The threshold is folded into the integer domain
        // (`prune_cutoff` is exactly equivalent to comparing
        // `lower_bound(qsum)` against it) so the hot loop is one
        // u16 compare per vector; the cutoff only moves when a
        // survivor improves the heap, so it is refreshed exactly
        // when `scan_one` reports a push and never otherwise.
        let mut cutoff = self.qtables.prune_cutoff(current_threshold(&heap, k));
        let mut pruned = 0usize;
        // At steady state nearly every vector prunes, so the loop is
        // dominated by the compare-and-skip path. Taking an unsigned min
        // over a chunk first (which vectorizes to a packed-min reduction)
        // skips PRUNE_CHUNK vectors per iteration on that path: chunk
        // min >= cutoff means every element fails the bound, so skipping
        // them together visits exactly the vectors the scalar loop would
        // and the heap, cutoff, and stats evolve identically.
        let mut base = 0usize;
        for chunk in self.qsums[..n].chunks(PRUNE_CHUNK) {
            let chunk_min = chunk.iter().copied().min().unwrap_or(u16::MAX);
            if u32::from(chunk_min) >= cutoff {
                pruned += chunk.len();
                base += chunk.len();
                continue;
            }
            for (off, &qsum) in chunk.iter().enumerate() {
                if u32::from(qsum) >= cutoff {
                    pruned += 1;
                    continue;
                }
                if scan_one(view, &self.arena, base + off, &mut heap, k, stats) {
                    cutoff = self.qtables.prune_cutoff(current_threshold(&heap, k));
                }
            }
            base += chunk.len();
        }
        stats.vectors_visited += pruned;
        stats.lookups_skipped += pruned * m;
        stats.quantized_pruned += pruned;
        collect_sorted(heap)
    }

    /// Early-abandoned scan over an explicit id list (inverted lists,
    /// candidate pools) with a threshold shared across the whole list;
    /// unsquared distances.
    pub fn search_ids(
        &mut self,
        view: &IndexView<'_>,
        projected_query: &[f32],
        ids: impl IntoIterator<Item = u32>,
        k: usize,
    ) -> (Vec<Neighbor>, SearchStats) {
        let (mut out, stats) = self.search_ids_squared(view, projected_query, ids, k);
        sqrt_distances(&mut out);
        (out, stats)
    }

    /// Like [`QueryEngine::search_ids`] but keeping squared distances.
    pub fn search_ids_squared(
        &mut self,
        view: &IndexView<'_>,
        projected_query: &[f32],
        ids: impl IntoIterator<Item = u32>,
        k: usize,
    ) -> (Vec<Neighbor>, SearchStats) {
        let before = self.arena.reallocations();
        self.prepare(view, projected_query);
        let (out, mut stats) = self.scan_ids_prepared(view, ids, k);
        (out, {
            stats.table_reallocations = self.arena.reallocations() - before;
            stats
        })
    }

    /// Early-abandoned scan over `ids` using whatever tables are currently
    /// in the arena ([`QueryEngine::prepare`] / `prepare_with` must have
    /// run). Squared distances; EA is exact w.r.t. the table ranking.
    pub fn scan_ids_prepared(
        &self,
        view: &IndexView<'_>,
        ids: impl IntoIterator<Item = u32>,
        k: usize,
    ) -> (Vec<Neighbor>, SearchStats) {
        let k = k.max(1).min(view.len().max(1));
        let mut stats = SearchStats::default();
        let mut heap: BinaryHeap<Neighbor> = BinaryHeap::with_capacity(k + 1);
        for id in ids {
            scan_one(view, &self.arena, id as usize, &mut heap, k, &mut stats);
        }
        (collect_sorted(heap), stats)
    }

    /// Answers every row of `queries`, sharding across threads. Each
    /// worker clones this engine once (it is only a prototype — `&self`)
    /// and reuses the clone for its whole shard, so the steady state does
    /// no per-query table allocation. `project` maps a raw query row into
    /// the view's (projected) space. The worker count honors the
    /// `VAQ_THREADS` override (see [`crate::threads`]).
    ///
    /// Returns per-query neighbor lists plus the work counters summed over
    /// the batch.
    pub fn search_batch<F>(
        &self,
        view: &IndexView<'_>,
        queries: &Matrix,
        k: usize,
        strategy: SearchStrategy,
        project: F,
    ) -> (Vec<Vec<Neighbor>>, SearchStats)
    where
        F: Fn(&[f32]) -> Vec<f32> + Sync,
    {
        let nq = queries.rows();
        let workers = crate::threads::worker_count(nq);
        // Quantized batches go through the tile shard: queries share one
        // fused pass over the packed codes per QUERY_TILE instead of
        // re-streaming the whole code array once per query.
        let tiled = matches!(strategy, SearchStrategy::Quantized);
        if workers <= 1 || nq < 4 {
            if tiled {
                let mut out: Vec<Vec<Neighbor>> = vec![Vec::new(); nq];
                let stats = quantized_tile_shard(self, view, queries, 0, &mut out, k, &project);
                return (out, stats);
            }
            let mut engine = self.clone();
            let mut stats = SearchStats::default();
            let out = (0..nq)
                .map(|qi| {
                    let projected = project(queries.row(qi));
                    let (res, s) = engine.search_with(view, &projected, k, strategy);
                    stats += s;
                    res
                })
                .collect();
            return (out, stats);
        }
        let mut out: Vec<Vec<Neighbor>> = vec![Vec::new(); nq];
        let mut worker_stats: Vec<SearchStats> = vec![SearchStats::default(); workers];
        let chunk = nq.div_ceil(workers);
        crate::sync::thread::scope(|scope| {
            let mut rest: &mut [Vec<Neighbor>] = &mut out;
            let mut stats_rest: &mut [SearchStats] = &mut worker_stats;
            let prototype = self;
            let project = &project;
            for w in 0..workers {
                let start = w * chunk;
                if start >= nq {
                    break;
                }
                let len = chunk.min(nq - start);
                let (mine, tail) = rest.split_at_mut(len);
                rest = tail;
                let (my_stats, stats_tail) = stats_rest.split_at_mut(1);
                stats_rest = stats_tail;
                scope.spawn(move || {
                    if tiled {
                        my_stats[0] =
                            quantized_tile_shard(prototype, view, queries, start, mine, k, project);
                        return;
                    }
                    let mut engine = prototype.clone();
                    for (j, slot) in mine.iter_mut().enumerate() {
                        let projected = project(queries.row(start + j));
                        let (res, s) = engine.search_with(view, &projected, k, strategy);
                        my_stats[0] += s;
                        *slot = res;
                    }
                });
            }
        });
        let stats = worker_stats.into_iter().fold(SearchStats::default(), |a, b| a + b);
        (out, stats)
    }
}

/// One worker's shard of a [`SearchStrategy::Quantized`] batch, processed
/// in [`QUERY_TILE`]-sized query tiles. Each tile computes its queries'
/// lower-bound sums in one fused pass over the packed codes
/// ([`accumulate_qsums_multi`]), so the code bytes stream through the
/// cache once per tile instead of once per query. Results and
/// [`SearchStats`] are identical to per-query `search_with` calls: the
/// fused kernel is bit-identical per query (u16 adds commute) and the
/// prune/rerank tail is the same code, consulted in the same query order
/// (so fault-injection degradations also fire on the same queries).
fn quantized_tile_shard<F>(
    prototype: &QueryEngine,
    view: &IndexView<'_>,
    queries: &Matrix,
    start: usize,
    out: &mut [Vec<Neighbor>],
    k: usize,
    project: &F,
) -> SearchStats
where
    F: Fn(&[f32]) -> Vec<f32> + Sync,
{
    let mut total = SearchStats::default();
    let nq = out.len();
    let mut engines: Vec<QueryEngine> = Vec::new();
    for base in (0..nq).step_by(QUERY_TILE) {
        let tile = QUERY_TILE.min(nq - base);
        if engines.len() < tile {
            engines.resize_with(tile, || prototype.clone());
        }
        let engines = &mut engines[..tile];
        let t0 = crate::obs::enabled().then(std::time::Instant::now);
        let mut stats = vec![SearchStats::default(); tile];
        let mut usable: Vec<Option<&PackedCodes>> = vec![None; tile];
        for (t, e) in engines.iter_mut().enumerate() {
            let projected = project(queries.row(start + base + t));
            let before = e.arena.reallocations();
            e.prepare(view, &projected);
            stats[t].table_reallocations = e.arena.reallocations() - before;
            usable[t] = usable_packing(view);
            if let Some(p) = usable[t] {
                let QueryEngine { arena, qtables, .. } = e;
                qtables.quantize(arena, p);
            }
        }
        if let Some(packed) = usable.iter().flatten().next().copied() {
            let _qscan = crate::obs::span("query.qscan");
            if let Some(pf) = view.prefetch {
                pf.advise_sequential_scan();
            }
            let mut lanes: Vec<(&QuantizedTables, &mut Vec<u16>)> = engines
                .iter_mut()
                .zip(&usable)
                .filter(|(_, u)| u.is_some())
                .map(|(e, _)| {
                    let QueryEngine { qtables, qsums, .. } = e;
                    (&*qtables, qsums)
                })
                .collect();
            accumulate_qsums_multi(active_kernel(), packed, &mut lanes);
        }
        for (t, e) in engines.iter_mut().enumerate() {
            let mut res = if usable[t].is_some() {
                e.quantized_rerank_prepared(view, k, &mut stats[t])
            } else {
                // Same degradation as the sequential Quantized arm: the
                // exact early-abandon scan answers this query.
                let n = view.len();
                let kk = k.max(1).min(n.max(1));
                let mut heap: BinaryHeap<Neighbor> = BinaryHeap::with_capacity(kk + 1);
                let _scan = crate::obs::span("query.scan");
                for i in 0..n {
                    scan_one(view, &e.arena, i, &mut heap, kk, &mut stats[t]);
                }
                collect_sorted(heap)
            };
            sqrt_distances(&mut res);
            out[base + t] = res;
        }
        if let Some(t0) = t0 {
            // Whole-tile latency, attributed evenly across its queries so
            // batch histograms stay comparable to sequential ones.
            let per_query = t0.elapsed().as_nanos() as u64 / tile as u64;
            for s in &stats {
                crate::obs::observe_ns("query_latency", per_query);
                crate::obs::record_search_stats(s);
            }
        }
        for s in stats {
            total += s;
        }
    }
    total
}

/// Per-query soundness check on a TI partition. Release builds keep the
/// cheap O(#clusters) size-sum test; debug builds additionally verify
/// exact membership — every database row in exactly one cluster — via
/// [`TiPartition::covers_exactly`], which the size sum alone cannot see
/// (a double-assigned row plus an omitted one still sums to `n`).
#[inline]
fn ti_covers(ti: &TiPartition, n: usize) -> bool {
    let total: usize = ti.members_total();
    if total != n {
        return false;
    }
    if cfg!(debug_assertions) {
        ti.covers_exactly(n)
    } else {
        true
    }
}

/// Per-query soundness check on the view's packed codes, shared between
/// the sequential [`SearchStrategy::Quantized`] arm and the batched tile
/// path so both degrade identically (including under fault injection).
fn usable_packing<'a>(view: &IndexView<'a>) -> Option<&'a PackedCodes> {
    match view.packed().filter(|p| p.is_active()) {
        Some(p) if crate::faults::fired("engine.qscan") => {
            crate::faults::note_degradation("engine.qscan: SIMD scan bypassed, EA scan");
            let _ = p;
            None
        }
        Some(p) if p.len() != view.len() || p.num_total_subspaces() != view.num_subspaces() => {
            // A packing that disagrees with the view (stale
            // after appends, or borrowed from another index)
            // could prune with a wrong bound — refuse it.
            crate::faults::note_degradation("engine.qscan: packed mismatch, EA scan");
            None
        }
        other => other,
    }
}

/// Abandon-check granularity of [`scan_one`]: partial sums are compared
/// against the threshold once per this many subspaces instead of after
/// every table add. The adds themselves stay strictly sequential, so the
/// f32 accumulation — and therefore every distance that reaches the heap
/// — is bit-identical to a per-lookup check; only where inside a doomed
/// row the abandon triggers changes (visible in `SearchStats::lookups`
/// at chunk granularity, never in results). Checking 4× less often
/// removes the branch + two stats counters from the dependency chain of
/// every add, which is what made EA slower than FullScan at n=100k.
const EA_CHUNK: usize = 4;

/// Vectors per chunk of the quantized prune loop. One cache line of
/// `u16` qsums — wide enough that the packed-min fast path amortizes the
/// loop overhead, small enough that a chunk with one survivor re-scans
/// only 31 extra compares.
const PRUNE_CHUNK: usize = 32;

/// Early-abandoned accumulation of one encoded vector against the arena.
/// Returns `true` iff the row entered the top-k heap (callers that cache
/// a pruning cutoff only need to refresh it then).
#[inline]
fn scan_one(
    view: &IndexView<'_>,
    arena: &TableArena,
    i: usize,
    heap: &mut BinaryHeap<Neighbor>,
    k: usize,
    stats: &mut SearchStats,
) -> bool {
    if view.is_dead(i) {
        // Tombstoned rows never reach the heap — checked here so every
        // scan path (EA, TI survivors, quantized rerank, id lists) is
        // covered by the same gate.
        stats.vectors_skipped += 1;
        return false;
    }
    let code = view.code(i);
    let m = code.len();
    let flat = arena.as_slice();
    let offsets = arena.offsets();
    let threshold = current_threshold(heap, k);
    stats.vectors_visited += 1;
    let mut dist = 0.0f32;
    let mut s = 0usize;
    // Table entries are squared Euclidean terms (>= 0), so the partial
    // sum is non-decreasing: a row is abandoned iff its full sum would
    // fail `dist < threshold`, no matter how often we check. The four
    // adds below must stay separate statements — reassociating them
    // would change the f32 rounding and break the byte-identical
    // contract with the per-lookup formulation.
    while s + EA_CHUNK <= m {
        dist += flat[offsets[s] + code[s] as usize];
        dist += flat[offsets[s + 1] + code[s + 1] as usize];
        dist += flat[offsets[s + 2] + code[s + 2] as usize];
        dist += flat[offsets[s + 3] + code[s + 3] as usize];
        s += EA_CHUNK;
        if dist >= threshold {
            stats.lookups += s;
            stats.lookups_skipped += m - s;
            return false; // abandoned — cannot enter the top-k
        }
    }
    while s < m {
        dist += flat[offsets[s] + code[s] as usize];
        s += 1;
    }
    stats.lookups += m;
    if dist >= threshold {
        return false;
    }
    push_k(heap, k, i as u32, dist)
}

/// Current pruning threshold: the k-th best squared distance so far, or
/// `INFINITY` while the heap is still warming up (Algorithm 4 computes the
/// first `K` candidates fully).
#[inline]
fn current_threshold(heap: &BinaryHeap<Neighbor>, k: usize) -> f32 {
    if heap.len() < k {
        f32::INFINITY
    } else {
        heap.peek().map(|n| n.distance).unwrap_or(f32::INFINITY)
    }
}

/// Offers a candidate to the bounded heap; `true` iff it was admitted
/// (i.e. the top-k — and thus the pruning threshold — changed).
#[inline]
fn push_k(heap: &mut BinaryHeap<Neighbor>, k: usize, index: u32, dist: f32) -> bool {
    if heap.len() < k {
        heap.push(Neighbor { index, distance: dist });
        true
    } else if let Some(top) = heap.peek() {
        if dist < top.distance {
            heap.pop();
            heap.push(Neighbor { index, distance: dist });
            true
        } else {
            false
        }
    } else {
        false
    }
}

/// Drains the heap into a best-first sorted list (distances left as-is).
fn collect_sorted(heap: BinaryHeap<Neighbor>) -> Vec<Neighbor> {
    let mut out = heap.into_vec();
    out.sort();
    out
}

/// Algorithm 4's final `distance = sqrt(distance)` (monotone; preserves
/// the order `collect_sorted` established).
fn sqrt_distances(out: &mut [Neighbor]) {
    for n in out.iter_mut() {
        n.distance = n.distance.max(0.0).sqrt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subspaces::{SubspaceLayout, SubspaceMode};

    fn setup(n: usize) -> (Matrix, Encoder, Vec<u16>, TiPartition) {
        let d = 8;
        let mut s = 21u64;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(d);
            for j in 0..d {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = ((s >> 40) as f32 / (1u32 << 23) as f32) - 1.0;
                row.push(v * 3.0 / (1.0 + j as f32));
            }
            rows.push(row);
        }
        let data = Matrix::from_rows(&rows);
        let vars: Vec<f64> = (0..d).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let layout = SubspaceLayout::build(&vars, 4, SubspaceMode::Uniform, false, 0).unwrap();
        let enc = Encoder::train(&data, &layout, &[5, 4, 3, 2], 15, 0).unwrap();
        let codes = enc.encode_all(&data);
        let ti = TiPartition::build(&enc, &codes, n, 16, 2, 1).unwrap();
        (data, enc, codes, ti)
    }

    #[test]
    fn ea_returns_identical_results_to_full_scan() {
        let (data, enc, codes, _) = setup(600);
        let view = IndexView::from_encoder(&enc, &codes, 600);
        let mut engine = QueryEngine::for_view(&view);
        for qi in [0usize, 100, 399] {
            let q = data.row(qi);
            let (full, _) = engine.search_with(&view, q, 10, SearchStrategy::FullScan);
            let (ea, _) = engine.search_with(&view, q, 10, SearchStrategy::EarlyAbandon);
            assert_eq!(
                full.iter().map(|n| n.index).collect::<Vec<_>>(),
                ea.iter().map(|n| n.index).collect::<Vec<_>>(),
                "query {qi}"
            );
            for (a, b) in full.iter().zip(ea.iter()) {
                assert!((a.distance - b.distance).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn ti_with_full_visit_matches_full_scan() {
        // Visiting 100% of clusters keeps TI pruning exact.
        let (data, enc, codes, ti) = setup(500);
        let view = IndexView::from_encoder(&enc, &codes, 500).with_ti(Some(&ti));
        let mut engine = QueryEngine::for_view(&view);
        for qi in [3usize, 250] {
            let q = data.row(qi);
            let (full, _) = engine.search_with(&view, q, 10, SearchStrategy::FullScan);
            let (tiea, _) =
                engine.search_with(&view, q, 10, SearchStrategy::TiEa { visit_frac: 1.0 });
            assert_eq!(
                full.iter().map(|n| n.index).collect::<Vec<_>>(),
                tiea.iter().map(|n| n.index).collect::<Vec<_>>(),
                "query {qi}"
            );
        }
    }

    /// Like [`setup`] but with eight subspaces, so the chunked abandon
    /// check (`EA_CHUNK` = 4) has an interior boundary to abandon at.
    fn setup_wide(n: usize) -> (Matrix, Encoder, Vec<u16>) {
        let d = 16;
        let mut s = 47u64;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(d);
            for j in 0..d {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = ((s >> 40) as f32 / (1u32 << 23) as f32) - 1.0;
                row.push(v * 3.0 / (1.0 + j as f32));
            }
            rows.push(row);
        }
        let data = Matrix::from_rows(&rows);
        let vars: Vec<f64> = (0..d).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let layout = SubspaceLayout::build(&vars, 8, SubspaceMode::Uniform, false, 0).unwrap();
        let enc = Encoder::train(&data, &layout, &[5, 4, 4, 3, 3, 2, 2, 2], 15, 0).unwrap();
        let codes = enc.encode_all(&data);
        (data, enc, codes)
    }

    #[test]
    fn ea_skips_lookups() {
        let (data, enc, codes) = setup_wide(800);
        let view = IndexView::from_encoder(&enc, &codes, 800);
        let mut engine = QueryEngine::for_view(&view);
        let q = data.row(1);
        let (_, full_stats) = engine.search_with(&view, q, 5, SearchStrategy::FullScan);
        let (_, ea_stats) = engine.search_with(&view, q, 5, SearchStrategy::EarlyAbandon);
        assert_eq!(full_stats.lookups, 800 * 8);
        assert!(ea_stats.lookups < full_stats.lookups, "EA did not skip any lookups");
        assert_eq!(ea_stats.lookups + ea_stats.lookups_skipped, 800 * 8);
    }

    #[test]
    fn ea_matches_full_scan_on_wide_plans() {
        // The chunk loop plus tail must accumulate in exactly the same
        // order as a per-lookup loop; m = 8 exercises two full chunks,
        // and k = 3 keeps the abandon threshold active.
        let (data, enc, codes) = setup_wide(600);
        let view = IndexView::from_encoder(&enc, &codes, 600);
        let mut engine = QueryEngine::for_view(&view);
        for qi in [0usize, 77, 421] {
            let q = data.row(qi);
            let (full, _) = engine.search_with(&view, q, 3, SearchStrategy::FullScan);
            let (ea, _) = engine.search_with(&view, q, 3, SearchStrategy::EarlyAbandon);
            assert_eq!(full, ea, "query {qi}");
        }
    }

    #[test]
    fn ti_skips_vectors() {
        let (data, enc, codes, ti) = setup(800);
        let view = IndexView::from_encoder(&enc, &codes, 800).with_ti(Some(&ti));
        let mut engine = QueryEngine::for_view(&view);
        let (_, stats) =
            engine.search_with(&view, data.row(2), 5, SearchStrategy::TiEa { visit_frac: 0.25 });
        assert!(stats.vectors_skipped > 0, "TI skipped nothing");
        assert_eq!(stats.vectors_visited + stats.vectors_skipped, 800);
    }

    #[test]
    fn partial_visit_recall_degrades_gracefully() {
        // Visiting 25% of clusters must still recover most of the exact
        // ADC top-10 (clusters are visited nearest-first).
        let (data, enc, codes, ti) = setup(1000);
        let view = IndexView::from_encoder(&enc, &codes, 1000).with_ti(Some(&ti));
        let mut engine = QueryEngine::for_view(&view);
        let mut overlap_sum = 0.0;
        let queries = [0usize, 123, 456, 789];
        for &qi in &queries {
            let q = data.row(qi);
            let (full, _) = engine.search_with(&view, q, 10, SearchStrategy::FullScan);
            let (tiea, _) =
                engine.search_with(&view, q, 10, SearchStrategy::TiEa { visit_frac: 0.25 });
            let full_set: std::collections::HashSet<u32> = full.iter().map(|n| n.index).collect();
            let overlap = tiea.iter().filter(|n| full_set.contains(&n.index)).count() as f64 / 10.0;
            overlap_sum += overlap;
        }
        let mean = overlap_sum / queries.len() as f64;
        assert!(mean > 0.5, "25% visit overlap too low: {mean}");
    }

    #[test]
    fn missing_partition_degrades_to_ea() {
        let (data, enc, codes, _) = setup(300);
        let view = IndexView::from_encoder(&enc, &codes, 300);
        let mut engine = QueryEngine::for_view(&view);
        let q = data.row(0);
        let (a, _) = engine.search_with(&view, q, 10, SearchStrategy::TiEa { visit_frac: 0.25 });
        let (b, _) = engine.search_with(&view, q, 10, SearchStrategy::EarlyAbandon);
        assert_eq!(
            a.iter().map(|n| n.index).collect::<Vec<_>>(),
            b.iter().map(|n| n.index).collect::<Vec<_>>()
        );
    }

    #[test]
    fn distances_are_sqrt_and_sorted() {
        let (data, enc, codes, _) = setup(200);
        let view = IndexView::from_encoder(&enc, &codes, 200);
        let mut engine = QueryEngine::for_view(&view);
        let (res, _) = engine.search_with(&view, data.row(9), 15, SearchStrategy::FullScan);
        assert_eq!(res.len(), 15);
        for w in res.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        // A vector queried against itself has near-zero reconstructed
        // distance — certainly below the raw squared scale.
        assert!(res[0].distance < 3.0);
    }

    #[test]
    fn k_larger_than_n_returns_n() {
        let (data, enc, codes, _) = setup(50);
        let view = IndexView::from_encoder(&enc, &codes, 50);
        let mut engine = QueryEngine::for_view(&view);
        let (res, _) = engine.search_with(&view, data.row(0), 500, SearchStrategy::FullScan);
        assert_eq!(res.len(), 50);
    }

    #[test]
    fn squared_variant_is_square_of_metric_variant() {
        let (data, enc, codes, _) = setup(150);
        let view = IndexView::from_encoder(&enc, &codes, 150);
        let mut engine = QueryEngine::for_view(&view);
        let q = data.row(4);
        let (metric, _) = engine.search_with(&view, q, 8, SearchStrategy::FullScan);
        let (squared, _) = engine.search_squared(&view, q, 8, SearchStrategy::FullScan);
        for (a, b) in metric.iter().zip(squared.iter()) {
            assert_eq!(a.index, b.index);
            assert!((a.distance * a.distance - b.distance).abs() < 1e-3 * b.distance.max(1.0));
        }
    }

    #[test]
    fn id_scan_matches_restricted_full_scan() {
        let (data, enc, codes, _) = setup(400);
        let view = IndexView::from_encoder(&enc, &codes, 400);
        let mut engine = QueryEngine::for_view(&view);
        let q = data.row(11);
        let ids: Vec<u32> = (0..400u32).filter(|i| i % 3 == 0).collect();
        let (got, stats) = engine.search_ids_squared(&view, q, ids.iter().copied(), 10);
        // Reference: exhaustive table accumulation over the same ids.
        engine.prepare(&view, q);
        let mut want: Vec<Neighbor> = ids
            .iter()
            .map(|&i| {
                let dist: f32 = view
                    .code(i as usize)
                    .iter()
                    .enumerate()
                    .map(|(s, &c)| engine.arena().lookup(s, c as usize))
                    .sum();
                Neighbor { index: i, distance: dist }
            })
            .collect();
        want.sort();
        want.truncate(10);
        assert_eq!(
            got.iter().map(|n| n.index).collect::<Vec<_>>(),
            want.iter().map(|n| n.index).collect::<Vec<_>>()
        );
        assert_eq!(stats.vectors_visited, ids.len());
    }

    #[test]
    fn steady_state_reallocates_nothing() {
        let (data, enc, codes, ti) = setup(300);
        let view = IndexView::from_encoder(&enc, &codes, 300).with_ti(Some(&ti));
        let mut engine = QueryEngine::for_view(&view);
        let baseline = engine.arena().reallocations();
        let mut realloc_reports = 0usize;
        for qi in 0..50 {
            for strategy in [
                SearchStrategy::FullScan,
                SearchStrategy::EarlyAbandon,
                SearchStrategy::TiEa { visit_frac: 0.5 },
            ] {
                let (_, stats) = engine.search_with(&view, data.row(qi % 300), 5, strategy);
                realloc_reports += stats.table_reallocations;
            }
        }
        assert_eq!(engine.arena().reallocations(), baseline, "arena grew in steady state");
        assert_eq!(realloc_reports, 0, "stats reported phantom reallocations");
    }

    #[test]
    fn one_engine_serves_views_with_different_layouts() {
        let (data, enc, codes, _) = setup(200);
        let view = IndexView::from_encoder(&enc, &codes, 200);
        // A second encoder with a different dictionary layout.
        let vars: Vec<f64> = (0..8).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let layout = SubspaceLayout::build(&vars, 2, SubspaceMode::Uniform, false, 0).unwrap();
        let enc2 = Encoder::train(&data, &layout, &[6, 3], 10, 0).unwrap();
        let codes2 = enc2.encode_all(&data);
        let view2 = IndexView::from_encoder(&enc2, &codes2, 200);
        let mut engine = QueryEngine::new();
        let q = data.row(0);
        let (a, _) = engine.search_with(&view, q, 5, SearchStrategy::EarlyAbandon);
        let (b, _) = engine.search_with(&view2, q, 5, SearchStrategy::EarlyAbandon);
        let (a2, _) = engine.search_with(&view, q, 5, SearchStrategy::EarlyAbandon);
        assert_eq!(a, a2, "alternating layouts corrupted results");
        assert_eq!(a.len(), 5);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn batch_matches_sequential_and_sums_stats() {
        let (data, enc, codes, ti) = setup(500);
        let view = IndexView::from_encoder(&enc, &codes, 500).with_ti(Some(&ti));
        let queries =
            Matrix::from_rows(&(0..20).map(|i| data.row(i * 7).to_vec()).collect::<Vec<_>>());
        let strategy = SearchStrategy::TiEa { visit_frac: 0.5 };
        let mut engine = QueryEngine::for_view(&view);
        let (batch, batch_stats) =
            engine.search_batch(&view, &queries, 6, strategy, |q| q.to_vec());
        let mut seq_stats = SearchStats::default();
        for qi in 0..queries.rows() {
            let (res, s) = engine.search_with(&view, queries.row(qi), 6, strategy);
            seq_stats += s;
            assert_eq!(batch[qi], res, "query {qi}");
        }
        assert_eq!(batch_stats.vectors_visited, seq_stats.vectors_visited);
        assert_eq!(batch_stats.vectors_skipped, seq_stats.vectors_skipped);
        assert_eq!(batch_stats.lookups, seq_stats.lookups);
        assert_eq!(batch_stats.lookups_skipped, seq_stats.lookups_skipped);
        // Workers clone a pre-sized arena: the batch allocates no tables.
        assert_eq!(batch_stats.table_reallocations, 0);
    }

    #[test]
    fn quantized_batch_matches_sequential_exactly() {
        // The tile shard (fused multi-query kernel + shared rerank tail)
        // must reproduce per-query answers AND per-query work counters
        // bit for bit; 13 queries exercises a partial trailing tile.
        let (data, enc, codes) = setup_wide(500);
        let packed = pack_view(&enc, &codes, 500);
        assert!(packed.is_active(), "wide plan must pack");
        let view = IndexView::from_encoder(&enc, &codes, 500).with_packed(Some(&packed));
        let queries =
            Matrix::from_rows(&(0..13).map(|i| data.row(i * 29).to_vec()).collect::<Vec<_>>());
        let engine = QueryEngine::for_view(&view);
        let (batch, batch_stats) =
            engine.search_batch(&view, &queries, 6, SearchStrategy::Quantized, |q| q.to_vec());
        let mut seq = QueryEngine::for_view(&view);
        let mut seq_stats = SearchStats::default();
        for qi in 0..queries.rows() {
            let (res, s) = seq.search_with(&view, queries.row(qi), 6, SearchStrategy::Quantized);
            seq_stats += s;
            assert_eq!(batch[qi], res, "query {qi}");
        }
        assert_eq!(batch_stats, seq_stats, "batched stats diverged from sequential");
        assert_eq!(batch_stats.table_reallocations, 0);
    }

    #[test]
    fn quantized_batch_without_packing_degrades_like_sequential() {
        // No packing attached: every tile lane must fall back to the
        // exact EA scan, exactly as the sequential Quantized arm does.
        let (data, enc, codes, _) = setup(300);
        let view = IndexView::from_encoder(&enc, &codes, 300);
        let queries =
            Matrix::from_rows(&(0..7).map(|i| data.row(i * 41).to_vec()).collect::<Vec<_>>());
        let engine = QueryEngine::for_view(&view);
        let (batch, batch_stats) =
            engine.search_batch(&view, &queries, 5, SearchStrategy::Quantized, |q| q.to_vec());
        let mut seq = QueryEngine::for_view(&view);
        let mut seq_stats = SearchStats::default();
        for qi in 0..queries.rows() {
            let (res, s) = seq.search_with(&view, queries.row(qi), 5, SearchStrategy::Quantized);
            seq_stats += s;
            assert_eq!(batch[qi], res, "query {qi}");
        }
        assert_eq!(batch_stats, seq_stats);
        assert_eq!(batch_stats.quantized_pruned, 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn doctored_partition_with_intact_size_sum_degrades_to_ea() {
        // Regression: `ti_covers` only summed cluster sizes, so a row
        // assigned twice while another was omitted passed the check and
        // the omitted row could never be returned. The debug-build exact
        // membership check must reject the doctored partition and fall
        // back to the EA scan, which still finds the omitted row.
        let n = 400;
        let (data, enc, codes, mut ti) = setup(n);
        let big = (0..ti.num_clusters()).max_by_key(|&c| ti.cluster_len(c)).unwrap();
        let (start, end) = ti.cluster_range(big);
        assert!(end - start >= 2);
        // Replace the farthest member (an omission) with a duplicate of
        // the nearest (a double assignment); the size sum stays n. The
        // cached distance column is untouched so the sorted invariant
        // holds.
        let dup = ti.member_idx.as_slice()[start];
        let omitted = ti.member_idx.as_slice()[end - 1];
        ti.member_idx.to_mut()[end - 1] = dup;
        assert_eq!(ti.members_total(), n, "doctoring must preserve the size sum");
        assert!(!ti.covers_exactly(n));

        let view = IndexView::from_encoder(&enc, &codes, n).with_ti(Some(&ti));
        let mut engine = QueryEngine::for_view(&view);
        let q = data.row(omitted as usize);
        let (tiea, _) = engine.search_with(&view, q, 1, SearchStrategy::TiEa { visit_frac: 1.0 });
        let (ea, _) = engine.search_with(&view, q, 1, SearchStrategy::EarlyAbandon);
        assert_eq!(tiea, ea, "doctored partition was not rejected");
    }

    fn pack_view(enc: &Encoder, codes: &[u16], n: usize) -> PackedCodes {
        let sizes: Vec<usize> = enc.codebooks().iter().map(|cb| cb.rows()).collect();
        PackedCodes::pack(codes, &sizes, n)
    }

    #[test]
    fn quantized_matches_early_abandon_byte_for_byte() {
        let (data, enc, codes, _) = setup(600);
        let packed = pack_view(&enc, &codes, 600);
        assert!(packed.is_active(), "5/4/3/2-bit plan must pack fully");
        let view = IndexView::from_encoder(&enc, &codes, 600).with_packed(Some(&packed));
        let mut engine = QueryEngine::for_view(&view);
        for qi in [0usize, 100, 399, 598] {
            for k in [1usize, 5, 17] {
                let q = data.row(qi);
                let (ea, _) = engine.search_with(&view, q, k, SearchStrategy::EarlyAbandon);
                let (qz, stats) = engine.search_with(&view, q, k, SearchStrategy::Quantized);
                assert_eq!(ea, qz, "query {qi} k {k}");
                assert_eq!(stats.vectors_visited + stats.vectors_skipped, 600);
            }
        }
    }

    #[test]
    fn quantized_scan_actually_prunes() {
        let (data, enc, codes, _) = setup(900);
        let packed = pack_view(&enc, &codes, 900);
        let view = IndexView::from_encoder(&enc, &codes, 900).with_packed(Some(&packed));
        let mut engine = QueryEngine::for_view(&view);
        let q = data.row(3);
        let (_, ea) = engine.search_with(&view, q, 5, SearchStrategy::EarlyAbandon);
        let (_, qz) = engine.search_with(&view, q, 5, SearchStrategy::Quantized);
        assert!(qz.quantized_pruned > 0, "lower bound never pruned anything");
        assert!(
            qz.lookups < ea.lookups,
            "quantized scan did not reduce exact lookups: {} vs {}",
            qz.lookups,
            ea.lookups
        );
    }

    #[test]
    fn quantized_without_packing_degrades_to_ea() {
        let (data, enc, codes, _) = setup(300);
        let view = IndexView::from_encoder(&enc, &codes, 300);
        let mut engine = QueryEngine::for_view(&view);
        let q = data.row(7);
        let (ea, _) = engine.search_with(&view, q, 10, SearchStrategy::EarlyAbandon);
        let (qz, stats) = engine.search_with(&view, q, 10, SearchStrategy::Quantized);
        assert_eq!(ea, qz);
        assert_eq!(stats.quantized_pruned, 0);
    }

    #[test]
    fn quantized_refuses_mismatched_packing() {
        // A packing built over a shorter prefix of the database must not
        // drive pruning decisions for the full view.
        let (data, enc, codes, _) = setup(400);
        let stale = pack_view(&enc, &codes[..200 * 4], 200);
        let view = IndexView::from_encoder(&enc, &codes, 400).with_packed(Some(&stale));
        let mut engine = QueryEngine::for_view(&view);
        let q = data.row(11);
        let (ea, _) = engine.search_with(&view, q, 10, SearchStrategy::EarlyAbandon);
        let (qz, stats) = engine.search_with(&view, q, 10, SearchStrategy::Quantized);
        assert_eq!(ea, qz);
        assert_eq!(stats.quantized_pruned, 0, "mismatched packing was used for pruning");
    }

    mod quantized_parity_proptests {
        use super::*;
        use proptest::prelude::*;

        /// Trains an encoder for an arbitrary bit plan over the shared
        /// deterministic dataset and returns everything a parity check
        /// needs. Bits span 2..=9, so plans mix packable (≤8-bit) and
        /// unpackable (9-bit, 512-row) subspaces.
        fn trained(bits: &[usize], n: usize) -> (Matrix, Encoder, Vec<u16>) {
            let (data, _, _, _) = setup(n);
            let vars: Vec<f64> = (0..8).map(|i| 1.0 / (1.0 + i as f64)).collect();
            let layout =
                SubspaceLayout::build(&vars, bits.len(), SubspaceMode::Uniform, false, 0).unwrap();
            let enc = Encoder::train(&data, &layout, bits, 8, 0).unwrap();
            let codes = enc.encode_all(&data);
            (data, enc, codes)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(6))]
            #[test]
            fn quantized_is_byte_identical_to_ea_on_random_bit_plans(
                bits in proptest::collection::vec(2usize..=9, 4),
                k in 1usize..16,
                qi in 0usize..300,
            ) {
                let n = 300;
                let (data, enc, codes) = trained(&bits, n);
                let packed = pack_view(&enc, &codes, n);
                let view =
                    IndexView::from_encoder(&enc, &codes, n).with_packed(Some(&packed));
                let mut engine = QueryEngine::for_view(&view);
                let q = data.row(qi);
                let (ea, _) = engine.search_with(&view, q, k, SearchStrategy::EarlyAbandon);
                let (qz, _) = engine.search_with(&view, q, k, SearchStrategy::Quantized);
                // Byte-identical: same indices AND bit-equal distances.
                prop_assert_eq!(ea, qz);
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn batched_quantized_equals_sequential_on_random_bit_plans(
                bits in proptest::collection::vec(2usize..=9, 4),
                nq in 1usize..11,
                k in 1usize..12,
            ) {
                // The batched tile path must be indistinguishable from
                // per-query searches — results and SearchStats — for any
                // mix of nibble / byte / unpackable subspaces and any
                // batch size (full and partial tiles alike).
                let n = 240;
                let (data, enc, codes) = trained(&bits, n);
                let packed = pack_view(&enc, &codes, n);
                let view =
                    IndexView::from_encoder(&enc, &codes, n).with_packed(Some(&packed));
                let queries = Matrix::from_rows(
                    &(0..nq).map(|i| data.row((i * 37) % n).to_vec()).collect::<Vec<_>>(),
                );
                let engine = QueryEngine::for_view(&view);
                let (batch, batch_stats) = engine.search_batch(
                    &view,
                    &queries,
                    k,
                    SearchStrategy::Quantized,
                    |q| q.to_vec(),
                );
                let mut seq = QueryEngine::for_view(&view);
                let mut seq_stats = SearchStats::default();
                for qi in 0..nq {
                    let (res, s) =
                        seq.search_with(&view, queries.row(qi), k, SearchStrategy::Quantized);
                    seq_stats += s;
                    prop_assert_eq!(&batch[qi], &res, "query {}", qi);
                }
                prop_assert_eq!(batch_stats, seq_stats);
            }
        }
    }

    #[test]
    fn dead_rows_are_excluded_from_every_strategy() {
        let n = 500;
        let (data, enc, codes, ti) = setup(n);
        let packed = pack_view(&enc, &codes, n);
        let mut words = vec![0u64; n.div_ceil(64)];
        for i in (0..n).step_by(3) {
            words[i / 64] |= 1 << (i % 64);
        }
        let view = IndexView::from_encoder(&enc, &codes, n)
            .with_ti(Some(&ti))
            .with_packed(Some(&packed))
            .with_dead(Some(&words));
        let mut engine = QueryEngine::for_view(&view);
        let q = data.row(33); // row 33 is dead: its own best match is gone
        let (full, fs) = engine.search_with(&view, q, 12, SearchStrategy::FullScan);
        assert_eq!(full.len(), 12);
        assert!(full.iter().all(|nb| nb.index % 3 != 0), "a tombstoned row was returned");
        assert_eq!(fs.vectors_visited + fs.vectors_skipped, n, "skip accounting broke");
        assert!(fs.vectors_skipped >= n / 3);
        // Every exact strategy must agree with the filtered full scan —
        // the filter is consulted at scan (EA / TI survivors) and at
        // rerank (quantized survivors) alike.
        for strategy in [
            SearchStrategy::EarlyAbandon,
            SearchStrategy::TiEa { visit_frac: 1.0 },
            SearchStrategy::Quantized,
        ] {
            let (got, st) = engine.search_with(&view, q, 12, strategy);
            assert_eq!(
                got.iter().map(|nb| nb.index).collect::<Vec<_>>(),
                full.iter().map(|nb| nb.index).collect::<Vec<_>>(),
                "{strategy:?} disagrees with the filtered full scan"
            );
            assert_eq!(st.vectors_visited + st.vectors_skipped, n, "{strategy:?} accounting");
        }
        // A detached bitmap restores the unfiltered results.
        let unfiltered = view.with_dead(None);
        let (all, _) = engine.search_with(&unfiltered, q, 1, SearchStrategy::FullScan);
        assert_eq!(all[0].index, 33, "row 33 must reappear once the bitmap is detached");
    }

    #[test]
    fn prepared_custom_tables_drive_id_scans() {
        // SDC-style: caller fills the arena itself, then scans.
        let (data, enc, codes, _) = setup(100);
        let view = IndexView::from_encoder(&enc, &codes, 100);
        let mut engine = QueryEngine::new();
        let q = data.row(8);
        engine.prepare(&view, q);
        let (via_prepare, _) = engine.scan_ids_prepared(&view, 0..100u32, 10);
        let sizes: Vec<usize> = view.table_sizes().collect();
        engine.prepare_with(sizes, |s, table| {
            let (lo, hi) = view.ranges()[s];
            squared_distances_into(&q[lo..hi], &view.codebooks()[s], table);
        });
        let (via_custom, _) = engine.scan_ids_prepared(&view, 0..100u32, 10);
        assert_eq!(via_prepare, via_custom);
    }
}
