//! An inverted-file index over VAQ primitives — the paper's closing
//! direction made concrete.
//!
//! The paper's §V-E findings are that (a) existing indexes for
//! quantization methods (IMI) trade recall for speed, and (b) "an index
//! that leverages the primitives of VAQ could potentially outperform
//! HNSW". [`VaqIvf`] is that index: a coarse k-means quantizer over the
//! *projected* (PC) space partitions the database into cells; each cell's
//! members keep their ordinary VAQ codes. A query probes only the
//! `nprobe` nearest cells and scans them with the same early-abandoned
//! variable-dictionary ADC as flat VAQ.
//!
//! Versus VAQ's own TI partitioning this differs in two ways: cells are
//! *learned* (Lloyd iterations) instead of sampled from the encoded data,
//! and the probe set is a count (`nprobe`) rather than a fraction —
//! matching how IVF indexes are tuned in practice. Versus IMI, the coarse
//! quantizer is a single k-means in the importance-ordered projected
//! space, so cell geometry aligns with the query distances VAQ computes.

use crate::engine::{IndexView, QueryEngine};
use crate::search::{Neighbor, SearchStats};
use crate::vaq::{Vaq, VaqConfig};
use crate::VaqError;
use vaq_kmeans::{KMeans, KMeansConfig};
use vaq_linalg::Matrix;

/// Configuration for [`VaqIvf::train`].
#[derive(Debug, Clone)]
pub struct VaqIvfConfig {
    /// Inner VAQ configuration (its own TI structure is disabled — the
    /// coarse quantizer replaces it).
    pub vaq: VaqConfig,
    /// Number of coarse cells (≈ √n is the usual IVF heuristic).
    pub coarse_cells: usize,
    /// Default number of cells probed per query.
    pub nprobe: usize,
    /// Coarse k-means iterations.
    pub coarse_iters: usize,
}

impl VaqIvfConfig {
    /// Defaults: the paper-standard inner VAQ plus √n-ish cells.
    pub fn new(budget_bits: usize, num_subspaces: usize, coarse_cells: usize) -> Self {
        VaqIvfConfig {
            vaq: VaqConfig::new(budget_bits, num_subspaces).with_ti_clusters(0),
            coarse_cells,
            nprobe: (coarse_cells / 10).max(1),
            coarse_iters: 15,
        }
    }
}

/// The trained IVF-over-VAQ index.
#[derive(Debug, Clone)]
pub struct VaqIvf {
    vaq: Vaq,
    /// Coarse centroids in the projected space.
    coarse: Matrix,
    /// Inverted lists: database row ids per cell.
    lists: Vec<Vec<u32>>,
    /// Default probe count.
    nprobe: usize,
}

impl VaqIvf {
    /// Trains the inner VAQ, then the coarse quantizer, then fills the
    /// inverted lists.
    pub fn train(data: &Matrix, cfg: &VaqIvfConfig) -> Result<VaqIvf, VaqError> {
        if cfg.coarse_cells == 0 {
            return Err(VaqError::BadConfig("coarse_cells must be positive".into()));
        }
        let mut inner_cfg = cfg.vaq.clone();
        inner_cfg.ti_clusters = 0; // the coarse quantizer replaces TI
        let vaq = Vaq::train(data, &inner_cfg)?;

        // Coarse clustering in the projected space (where ADC distances
        // live), so cell geometry matches query geometry.
        let projected = vaq.pca.transform(data)?;
        let km = KMeansConfig::new(cfg.coarse_cells.min(data.rows()))
            .with_seed(inner_cfg.seed ^ 0x1AF)
            .with_max_iters(cfg.coarse_iters);
        let model = KMeans::fit(&projected, &km)?;
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); model.k()];
        for (i, &c) in model.assignments.iter().enumerate() {
            lists[c as usize].push(i as u32);
        }
        Ok(VaqIvf { vaq, coarse: model.centroids, lists, nprobe: cfg.nprobe })
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vaq.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.vaq.is_empty()
    }

    /// Number of coarse cells.
    pub fn num_cells(&self) -> usize {
        self.lists.len()
    }

    /// The inner flat VAQ index.
    pub fn inner(&self) -> &Vaq {
        &self.vaq
    }

    /// A borrowed [`IndexView`] of the encoded database (the coarse lists
    /// address rows of the same code array flat VAQ scans).
    pub fn view(&self) -> IndexView<'_> {
        self.vaq.view()
    }

    /// A [`QueryEngine`] pre-sized for this index.
    pub fn engine(&self) -> QueryEngine {
        QueryEngine::for_view(&self.view())
    }

    /// Searches with the default probe count. Errors when the query's
    /// dimensionality does not match the index.
    pub fn search(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, VaqError> {
        Ok(self.search_nprobe(query, k, self.nprobe)?.0)
    }

    /// Searches probing the `nprobe` nearest cells; returns work counters.
    ///
    /// Convenience wrapper that builds a fresh engine per call; query
    /// loops should hold a [`VaqIvf::engine`] and use
    /// [`VaqIvf::search_nprobe_in`].
    pub fn search_nprobe(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
    ) -> Result<(Vec<Neighbor>, SearchStats), VaqError> {
        let mut engine = self.engine();
        self.search_nprobe_in(&mut engine, query, k, nprobe)
    }

    /// Searches through a caller-held engine: one table fill, then one
    /// early-abandoned scan over the probed cells' concatenated lists
    /// (the threshold is shared across cells, exactly like the flat scan).
    pub fn search_nprobe_in(
        &self,
        engine: &mut QueryEngine,
        query: &[f32],
        k: usize,
        nprobe: usize,
    ) -> Result<(Vec<Neighbor>, SearchStats), VaqError> {
        let projected = self.vaq.project_query(query)?;
        let view = self.view();

        // Order cells by centroid distance.
        let mut order: Vec<(f32, u32)> = self
            .coarse
            .iter_rows()
            .enumerate()
            .map(|(c, row)| (vaq_linalg::squared_euclidean(row, &projected), c as u32))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        let probe = nprobe.max(1);
        let ids = order
            .iter()
            .take(probe)
            .flat_map(|&(_, cell)| self.lists[cell as usize].iter().copied());
        let (out, mut stats) = engine.search_ids(&view, &projected, ids, k);
        for &(_, cell) in order.iter().skip(probe) {
            stats.vectors_skipped += self.lists[cell as usize].len();
        }
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchStrategy;
    use vaq_dataset::{exact_knn, SyntheticSpec};
    use vaq_metrics::recall_at_k;

    fn config() -> VaqIvfConfig {
        let mut cfg = VaqIvfConfig::new(64, 8, 32);
        cfg.vaq = cfg.vaq.with_seed(5);
        cfg
    }

    #[test]
    fn lists_partition_database() {
        let ds = SyntheticSpec::sift_like().generate(600, 0, 1);
        let ivf = VaqIvf::train(&ds.data, &config()).unwrap();
        let total: usize = ivf.lists.iter().map(|l| l.len()).sum();
        assert_eq!(total, 600);
        assert_eq!(ivf.len(), 600);
        assert!(ivf.num_cells() <= 32);
    }

    #[test]
    fn probing_all_cells_matches_flat_vaq() {
        let ds = SyntheticSpec::sift_like().generate(500, 10, 2);
        let ivf = VaqIvf::train(&ds.data, &config()).unwrap();
        for q in 0..ds.queries.rows() {
            let (ivf_res, _) = ivf.search_nprobe(ds.queries.row(q), 10, ivf.num_cells()).unwrap();
            let flat =
                ivf.inner().search_with(ds.queries.row(q), 10, SearchStrategy::FullScan).unwrap().0;
            assert_eq!(
                ivf_res.iter().map(|n| n.index).collect::<Vec<_>>(),
                flat.iter().map(|n| n.index).collect::<Vec<_>>(),
                "query {q}"
            );
        }
    }

    #[test]
    fn fewer_probes_skip_work_gracefully() {
        let ds = SyntheticSpec::sift_like().generate(2000, 25, 3);
        let truth = exact_knn(&ds.data, &ds.queries, 10);
        let ivf = VaqIvf::train(&ds.data, &config()).unwrap();
        let run = |nprobe: usize| -> (f64, usize) {
            let mut visited = 0;
            let retrieved: Vec<Vec<u32>> = (0..ds.queries.rows())
                .map(|q| {
                    let (res, stats) = ivf.search_nprobe(ds.queries.row(q), 10, nprobe).unwrap();
                    visited += stats.vectors_visited;
                    res.iter().map(|n| n.index).collect()
                })
                .collect();
            (recall_at_k(&retrieved, &truth, 10), visited)
        };
        let (r_few, v_few) = run(2);
        let (r_many, v_many) = run(16);
        assert!(v_few < v_many, "fewer probes must visit fewer vectors");
        assert!(r_many >= r_few - 0.02, "more probes should not lose recall");
        assert!(r_many > 0.4, "recall collapsed: {r_many}");
    }

    #[test]
    fn rejects_zero_cells() {
        let ds = SyntheticSpec::deep_like().generate(50, 0, 4);
        let mut cfg = config();
        cfg.coarse_cells = 0;
        assert!(VaqIvf::train(&ds.data, &cfg).is_err());
    }

    #[test]
    fn stats_account_for_every_vector() {
        let ds = SyntheticSpec::deep_like().generate(400, 1, 5);
        let ivf = VaqIvf::train(&ds.data, &config()).unwrap();
        let (_, stats) = ivf.search_nprobe(ds.queries.row(0), 5, 4).unwrap();
        assert_eq!(stats.vectors_visited + stats.vectors_skipped, 400);
    }
}
