//! Per-index write-ahead log: the redo journal behind
//! [`SegmentedVaq::open_durable`].
//!
//! Every logical mutation (`add`, `delete`, and therefore `update`, which
//! is a delete + add) appends one checksummed, length-prefixed record
//! *before* the in-memory state changes; seals and compactions append
//! advisory commit markers. After a crash, recovery loads the last
//! committed manifest and replays the WAL suffix whose sequence numbers
//! exceed the manifest's `wal_seq` watermark, reaching the exact
//! pre-crash logical state.
//!
//! ## On-disk format
//!
//! A WAL file is a plain concatenation of frames (no header):
//!
//! ```text
//! frame:   len u32 | crc32c u32 | payload[len]
//! payload: seq u64 | op u8 | body
//! body:    Add     → first_id u32 | rows u64 | ncodes u64 | codes [u16]
//!          Delete  → id u32
//!          Seal    → rows u64            (advisory marker)
//!          Compact → segments u64        (advisory marker)
//! ```
//!
//! `Add` stores the already-encoded codes, not raw vectors: replay is a
//! deterministic buffer append, never a re-encode.
//!
//! ## Torn tails vs. corruption
//!
//! A power cut can tear the last frame. [`scan`] truncates a bad record
//! **only when it is physically last** (its bytes run to end-of-file):
//! that is indistinguishable from a torn write, and dropping it restores
//! a prefix-consistent state — the op it logged never returned success,
//! so nothing is lost. A checksum mismatch with more bytes *after* it
//! cannot be a torn write and is reported as a typed corruption error.
//!
//! ## Crash simulation fidelity
//!
//! [`Wal::append`] is gated by the `persist.wal_append` and
//! `persist.fsync` fault sites. An injected crash leaves realistic
//! debris: a torn prefix of the frame for `wal_append` (the write was cut
//! mid-flight), and nothing at all for `fsync` (un-synced page-cache
//! bytes never reach disk — the file is rewound so a later recovery
//! cannot replay an op the caller saw fail). Each append therefore either
//! returns success with the record durable, or fails with the log's
//! committed prefix intact.
//!
//! [`SegmentedVaq::open_durable`]: super::SegmentedVaq::open_durable

use crate::persist::{abandoned, io_at, narrow, wide};
use crate::VaqError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const OP_ADD: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_SEAL: u8 = 3;
const OP_COMPACT: u8 = 4;

/// Bytes of a frame header (`len u32 | crc u32`).
const FRAME_HEADER: usize = 8;

/// One logged mutation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WalOp {
    /// `rows` vectors appended with contiguous ids `first_id..first_id+rows`,
    /// stored as their encoded codes (`rows × m` of them).
    Add { first_id: u32, rows: usize, codes: Vec<u16> },
    /// One id tombstoned.
    Delete { id: u32 },
    /// Advisory marker: a seal moved `rows` buffered rows into a sealed
    /// segment. Replay ignores it (sealing is re-derived from policy).
    Seal { rows: usize },
    /// Advisory marker: a compaction rewrote `segments` segment(s).
    Compact { segments: usize },
}

/// A decoded record: its sequence number plus the op.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WalRecord {
    pub(crate) seq: u64,
    pub(crate) op: WalOp,
}

/// `<manifest>.wal` — the log that pairs with a durable manifest.
pub(crate) fn wal_path(manifest: &Path) -> PathBuf {
    let mut os = manifest.as_os_str().to_os_string();
    os.push(".wal");
    PathBuf::from(os)
}

/// The uniform WAL corruption error.
pub(crate) fn corrupt(msg: &str) -> VaqError {
    VaqError::BadConfig(format!("corrupt write-ahead log: {msg}"))
}

fn encode_frame(seq: u64, op: &WalOp) -> Result<Vec<u8>, VaqError> {
    let mut payload = BytesMut::with_capacity(64);
    payload.put_u64_le(seq);
    match op {
        WalOp::Add { first_id, rows, codes } => {
            payload.put_u8(OP_ADD);
            payload.put_u32_le(*first_id);
            payload.put_u64_le(wide(*rows));
            payload.put_u64_le(wide(codes.len()));
            for &c in codes {
                payload.put_u16_le(c);
            }
        }
        WalOp::Delete { id } => {
            payload.put_u8(OP_DELETE);
            payload.put_u32_le(*id);
        }
        WalOp::Seal { rows } => {
            payload.put_u8(OP_SEAL);
            payload.put_u64_le(wide(*rows));
        }
        WalOp::Compact { segments } => {
            payload.put_u8(OP_COMPACT);
            payload.put_u64_le(wide(*segments));
        }
    }
    let len = u32::try_from(payload.len())
        .map_err(|_| VaqError::BadConfig("wal record too large".into()))?;
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&crate::crc::crc32c(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Decodes a checksum-verified payload. A malformed payload under a valid
/// CRC cannot be a torn write, so every failure here is typed corruption.
fn decode_payload(mut p: Bytes) -> Result<WalRecord, VaqError> {
    if p.remaining() < 9 {
        return Err(corrupt("record too short"));
    }
    let seq = p.get_u64_le();
    let op = match p.get_u8() {
        OP_ADD => {
            if p.remaining() < 20 {
                return Err(corrupt("add record too short"));
            }
            let first_id = p.get_u32_le();
            let rows = narrow(p.get_u64_le(), "wal add row count")?;
            let ncodes = narrow(p.get_u64_le(), "wal add code count")?;
            let nbytes =
                ncodes.checked_mul(2).ok_or_else(|| corrupt("add record code count overflow"))?;
            if p.remaining() != nbytes {
                return Err(corrupt("add record length mismatch"));
            }
            let codes: Vec<u16> = (0..ncodes).map(|_| p.get_u16_le()).collect();
            WalOp::Add { first_id, rows, codes }
        }
        OP_DELETE => {
            if p.remaining() != 4 {
                return Err(corrupt("delete record length mismatch"));
            }
            WalOp::Delete { id: p.get_u32_le() }
        }
        OP_SEAL => {
            if p.remaining() != 8 {
                return Err(corrupt("seal record length mismatch"));
            }
            WalOp::Seal { rows: narrow(p.get_u64_le(), "wal seal row count")? }
        }
        OP_COMPACT => {
            if p.remaining() != 8 {
                return Err(corrupt("compact record length mismatch"));
            }
            WalOp::Compact { segments: narrow(p.get_u64_le(), "wal compact count")? }
        }
        tag => return Err(corrupt(&format!("unknown op tag {tag}"))),
    };
    if !matches!(op, WalOp::Add { .. }) && p.remaining() != 0 {
        return Err(corrupt("record has trailing bytes"));
    }
    Ok(WalRecord { seq, op })
}

/// The result of scanning a WAL file: every decodable record in order,
/// the length of the clean prefix, and whether a torn tail was dropped.
#[derive(Debug)]
pub(crate) struct WalScan {
    pub(crate) records: Vec<WalRecord>,
    /// Byte length of the valid prefix; anything past it is torn-write
    /// debris the next append may overwrite.
    pub(crate) clean_len: u64,
    /// `true` when a torn tail record was truncated away.
    pub(crate) torn: bool,
}

/// Reads and validates a WAL file. A missing file is an empty log (a
/// manifest written by plain `save` has no WAL yet). See the module docs
/// for the torn-tail / mid-log-corruption distinction.
pub(crate) fn scan(path: &Path) -> Result<WalScan, VaqError> {
    let data = match std::fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalScan { records: Vec::new(), clean_len: 0, torn: false });
        }
        Err(e) => return Err(io_at(path, e)),
    };
    let mut records = Vec::new();
    let mut off = 0usize;
    loop {
        let rem = data.len() - off;
        if rem == 0 {
            return Ok(WalScan { records, clean_len: wide(off), torn: false });
        }
        if rem < FRAME_HEADER {
            // Not even a full frame header: torn tail.
            return Ok(WalScan { records, clean_len: wide(off), torn: true });
        }
        let mut header = Bytes::copy_from_slice(&data[off..off + FRAME_HEADER]);
        let len = narrow(u64::from(header.get_u32_le()), "wal frame length")?;
        let stored = header.get_u32_le();
        if rem - FRAME_HEADER < len {
            // The frame claims more bytes than exist: torn tail. (A
            // corrupted length field in the last frame lands here too —
            // equally safe to drop, the record was never acknowledged.)
            return Ok(WalScan { records, clean_len: wide(off), torn: true });
        }
        let payload = &data[off + FRAME_HEADER..off + FRAME_HEADER + len];
        if crate::crc::crc32c(payload) != stored {
            if off + FRAME_HEADER + len == data.len() {
                // Physically-last record: indistinguishable from a torn
                // write, so truncate to the committed prefix.
                return Ok(WalScan { records, clean_len: wide(off), torn: true });
            }
            return Err(corrupt("mid-log checksum mismatch"));
        }
        let rec = decode_payload(Bytes::copy_from_slice(payload))?;
        if let Some(prev) = records.last() {
            let prev: &WalRecord = prev;
            if rec.seq != prev.seq + 1 {
                return Err(corrupt("sequence numbers not consecutive"));
            }
        }
        records.push(rec);
        off += FRAME_HEADER + len;
    }
}

/// An open, appendable WAL file. Tracks the clean (synced) length so a
/// failed append can restore the committed prefix before the next write.
#[derive(Debug)]
pub(crate) struct Wal {
    file: std::fs::File,
    path: PathBuf,
    /// Length of the durable prefix; everything past it is unacknowledged.
    len: u64,
    next_seq: u64,
}

impl Wal {
    /// Creates (or truncates) the log at `path`; the first record will
    /// carry sequence number `last_seq + 1`.
    pub(crate) fn create(path: &Path, last_seq: u64) -> Result<Wal, VaqError> {
        if crate::faults::fired("persist.wal_append") {
            return Err(abandoned(path, "persist.wal_append"));
        }
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_at(path, e))?;
        Ok(Wal { file, path: path.to_path_buf(), len: 0, next_seq: last_seq + 1 })
    }

    /// Opens an existing log for appending after a [`scan`]: the file is
    /// truncated to the scan's `clean_len` (physically dropping any torn
    /// tail) and the next record carries `last_seq + 1`.
    pub(crate) fn open_append(path: &Path, clean_len: u64, last_seq: u64) -> Result<Wal, VaqError> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_at(path, e))?;
        file.set_len(clean_len).map_err(|e| io_at(path, e))?;
        Ok(Wal { file, path: path.to_path_buf(), len: clean_len, next_seq: last_seq + 1 })
    }

    /// Sequence number of the last durable record (0 when none).
    pub(crate) fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Appends and fsyncs one record, returning its sequence number. On
    /// any failure the log's durable prefix is untouched — see the module
    /// docs for the injected-crash debris model.
    pub(crate) fn append(&mut self, op: &WalOp) -> Result<u64, VaqError> {
        let seq = self.next_seq;
        let frame = encode_frame(seq, op)?;
        // Restore the clean prefix first: debris from a previously failed
        // append was never synced, so it "never reached disk".
        self.file.set_len(self.len).map_err(|e| io_at(&self.path, e))?;
        self.file.seek(SeekFrom::Start(self.len)).map_err(|e| io_at(&self.path, e))?;
        if crate::faults::fired("persist.wal_append") {
            // Simulated power loss mid-append: a torn prefix of the frame
            // may reach disk.
            let _ = self.file.write_all(&frame[..frame.len() / 2]);
            return Err(abandoned(&self.path, "persist.wal_append"));
        }
        self.file.write_all(&frame).map_err(|e| io_at(&self.path, e))?;
        if crate::faults::fired("persist.fsync") {
            // The un-synced frame never reached disk.
            let _ = self.file.set_len(self.len);
            return Err(abandoned(&self.path, "persist.fsync"));
        }
        #[cfg(not(miri))]
        if let Err(e) = self.file.sync_data() {
            let _ = self.file.set_len(self.len);
            return Err(io_at(&self.path, e));
        }
        self.len += wide(frame.len());
        self.next_seq = seq + 1;
        crate::obs::counter_add("wal.appends", 1);
        Ok(seq)
    }
}

/// A [`Wal`] attached to a live index: remembers which manifest it pairs
/// with and summarizes the id ranges its un-checkpointed `Add` records
/// cover, for the VAQ112 audit rule.
#[derive(Debug)]
pub(crate) struct Journal {
    pub(crate) wal: Wal,
    pub(crate) manifest_path: PathBuf,
    /// `next_id` at the moment the paired manifest was committed: every
    /// logged add must start at or above this watermark.
    pub(crate) base_next_id: u32,
    /// Id ranges `[start, end)` of logged adds since the checkpoint,
    /// in append order (coalesced when contiguous).
    pub(crate) add_ranges: Vec<(u32, u32)>,
}

impl Journal {
    pub(crate) fn append(&mut self, op: &WalOp) -> Result<u64, VaqError> {
        let seq = self.wal.append(op)?;
        if let WalOp::Add { first_id, rows, .. } = op {
            // The caller's id-space check guarantees first_id + rows fits.
            let end = first_id.saturating_add(u32::try_from(*rows).unwrap_or(u32::MAX));
            match self.add_ranges.last_mut() {
                Some(last) if last.1 == *first_id => last.1 = end,
                _ => self.add_ranges.push((*first_id, end)),
            }
        }
        Ok(seq)
    }
}

/// A point-in-time view of the journal for the audit (VAQ112), captured
/// together with `next_id` under the writer lock.
#[derive(Debug, Clone)]
pub(crate) struct WalSummary {
    pub(crate) base_next_id: u32,
    pub(crate) add_ranges: Vec<(u32, u32)>,
    pub(crate) last_seq: u64,
    pub(crate) next_id: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vaq-wal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Add { first_id: 10, rows: 2, codes: vec![1, 2, 3, 4] },
            WalOp::Delete { id: 11 },
            WalOp::Seal { rows: 2 },
            WalOp::Compact { segments: 3 },
        ]
    }

    #[test]
    fn round_trips_every_op() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("log.wal");
        let mut wal = Wal::create(&path, 7).unwrap();
        for op in &sample_ops() {
            wal.append(op).unwrap();
        }
        assert_eq!(wal.last_seq(), 11);
        let scan = scan(&path).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.records.len(), 4);
        assert_eq!(scan.records[0].seq, 8);
        let ops: Vec<WalOp> = scan.records.into_iter().map(|r| r.op).collect();
        assert_eq!(ops, sample_ops());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let s = scan(Path::new("/nonexistent/vaq-test.wal")).unwrap();
        assert!(s.records.is_empty() && !s.torn && s.clean_len == 0);
    }

    #[test]
    fn torn_tail_is_truncated_mid_log_corruption_is_typed() {
        let dir = tmp_dir("torn");
        let path = dir.join("log.wal");
        let mut wal = Wal::create(&path, 0).unwrap();
        for op in &sample_ops() {
            wal.append(op).unwrap();
        }
        let clean = std::fs::read(&path).unwrap();

        // Truncating at every byte boundary recovers a record prefix.
        for cut in 0..clean.len() {
            std::fs::write(&path, &clean[..cut]).unwrap();
            let s = scan(&path).unwrap();
            assert!(s.records.len() <= 4, "cut at {cut}");
            assert!(wide(cut) >= s.clean_len, "cut at {cut}");
        }

        // A flipped bit in the *last* record's payload is truncated like
        // a torn tail; the earlier records survive.
        let mut flipped = clean.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        let s = scan(&path).unwrap();
        assert!(s.torn);
        assert_eq!(s.records.len(), 3);

        // The same flip mid-log (bytes follow) is typed corruption.
        let mut mid = clean.clone();
        mid[FRAME_HEADER + 2] ^= 0x40; // inside record 1's payload
        std::fs::write(&path, &mid).unwrap();
        let err = scan(&path).unwrap_err();
        assert!(matches!(err, VaqError::BadConfig(ref m) if m.contains("write-ahead log")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[cfg(feature = "faults")]
    fn failed_append_leaves_committed_prefix() {
        let dir = tmp_dir("prefix");
        let path = dir.join("log.wal");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append(&WalOp::Delete { id: 1 }).unwrap();
        let committed = std::fs::read(&path).unwrap();

        crate::faults::arm("persist.wal_append", crate::faults::Trigger::Always);
        let err = wal.append(&WalOp::Delete { id: 2 }).unwrap_err();
        assert!(matches!(err, VaqError::Io { .. }));
        crate::faults::disarm_all();

        // The torn half is on disk, but a scan truncates it away...
        let s = scan(&path).unwrap();
        assert!(s.torn);
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.clean_len, wide(committed.len()));
        // ...and the next successful append overwrites the debris.
        wal.append(&WalOp::Delete { id: 3 }).unwrap();
        let s = scan(&path).unwrap();
        assert!(!s.torn);
        assert_eq!(s.records.len(), 2);
        assert_eq!(s.records[1].op, WalOp::Delete { id: 3 });
        std::fs::remove_dir_all(&dir).ok();
    }
}
