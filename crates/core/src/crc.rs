//! CRC32C (Castagnoli) — the checksum guarding every durable byte.
//!
//! Implemented in-tree (no external dependency) as the classic
//! byte-at-a-time table walk over the reflected Castagnoli polynomial
//! `0x1EDC6F41` (reversed: `0x82F63B78`) — the same CRC used by iSCSI,
//! ext4 metadata, and most storage engines, chosen for its better burst-
//! and random-error detection than CRC32 (IEEE). The `VAQ3` manifest
//! header, every manifest extent, and every WAL record carry one of
//! these; a mismatch on load is reported as a typed corruption error,
//! never a panic.
//!
//! The table build is a `const fn`, so the 1 KiB lookup table is computed
//! at compile time and lives in rodata.

/// Reflected Castagnoli polynomial.
const POLY: u32 = 0x82F6_3B78;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Folds `data` into a running CRC32C `state` (use [`crc32c`] unless you
/// are checksumming incrementally). The state is the *internal* (already
/// inverted) form: start from `!0`, finish with `^ !0`.
pub fn update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        let idx = usize::from((state ^ u32::from(b)) as u8);
        state = TABLE[idx] ^ (state >> 8);
    }
    state
}

/// The CRC32C of `data` (standard init `!0` / final xor `!0`).
pub fn crc32c(data: &[u8]) -> u32 {
    update(!0u32, data) ^ !0u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 §B.4 / SSE4.2 reference vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
    }

    #[test]
    fn incremental_update_matches_one_shot() {
        let data = b"variance-aware quantization";
        let whole = crc32c(data);
        let mut state = !0u32;
        for chunk in data.chunks(5) {
            state = update(state, chunk);
        }
        assert_eq!(state ^ !0u32, whole);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"0123456789abcdef".to_vec();
        let clean = crc32c(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), clean, "missed flip at {byte}:{bit}");
            }
        }
    }
}
