//! Subspace construction and partial importance balancing (paper §III-B
//! and the balancing prologue of Algorithm 2).
//!
//! Dimensions here are *principal components*, already sorted by descending
//! eigenvalue. A [`SubspaceLayout`] records which PCs belong to which
//! subspace (as a permutation plus boundaries) together with each
//! subspace's variance share — the `W` vector the bit allocator maximizes
//! against.

use crate::VaqError;
use vaq_kmeans::kmeans_1d;

/// How to carve PCs into subspaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubspaceMode {
    /// Equal-width contiguous chunks (remainder spread over the first
    /// chunks), like PQ/OPQ.
    Uniform,
    /// Non-uniform subspaces obtained by 1-D k-means over the variance
    /// vector: PCs explaining similar variance shares group together
    /// (paper §III-B "Clustering of Dimensions").
    Clustered,
}

/// The derived subspace structure.
#[derive(Debug, Clone)]
pub struct SubspaceLayout {
    /// Permutation: position in the *encoded* order → original PC index.
    /// Applying it to the eigenvector columns yields the projection basis.
    pub perm: Vec<usize>,
    /// Half-open `(start, end)` ranges into the permuted order, one per
    /// subspace, in descending importance.
    pub ranges: Vec<(usize, usize)>,
    /// Variance share of each subspace (sums to ≤ 1), aligned with
    /// `ranges`.
    pub variance_share: Vec<f64>,
    /// Per-PC normalized variance in the permuted order.
    pub pc_share: Vec<f64>,
}

impl SubspaceLayout {
    /// Builds a layout from per-PC variances (descending), carving `m`
    /// subspaces with the given mode and optionally applying the partial
    /// balancing swaps.
    pub fn build(
        variances: &[f64],
        m: usize,
        mode: SubspaceMode,
        partial_balance: bool,
        seed: u64,
    ) -> Result<SubspaceLayout, VaqError> {
        let d = variances.len();
        if d == 0 {
            return Err(VaqError::EmptyData);
        }
        if m == 0 || m > d {
            return Err(VaqError::BadConfig(format!(
                "{m} subspaces out of range for {d} dimensions"
            )));
        }
        // Normalize to shares (paper Eq. 6 — callers usually pass
        // eigenvalues; normalization makes the layout scale-free).
        let total: f64 = variances.iter().map(|v| v.abs()).sum();
        let share: Vec<f64> = if total > 0.0 {
            variances.iter().map(|v| v.abs() / total).collect()
        } else {
            vec![1.0 / d as f64; d]
        };

        let mut boundaries = match mode {
            SubspaceMode::Uniform => uniform_boundaries(d, m),
            SubspaceMode::Clustered => clustered_boundaries(&share, m, seed)?,
        };
        repair_ordering(&share, &mut boundaries);

        let mut perm: Vec<usize> = (0..d).collect();
        if partial_balance {
            partial_balance_swaps(&mut perm, &share, &boundaries);
        }

        let pc_share: Vec<f64> = perm.iter().map(|&i| share[i]).collect();
        let ranges = boundaries_to_ranges(&boundaries, d);
        let variance_share: Vec<f64> =
            ranges.iter().map(|&(lo, hi)| pc_share[lo..hi].iter().sum()).collect();
        Ok(SubspaceLayout { perm, ranges, variance_share, pc_share })
    }

    /// Number of subspaces.
    pub fn num_subspaces(&self) -> usize {
        self.ranges.len()
    }

    /// Total dimensionality.
    pub fn dim(&self) -> usize {
        self.perm.len()
    }
}

/// Boundaries (exclusive end of each subspace except the implicit last).
fn uniform_boundaries(d: usize, m: usize) -> Vec<usize> {
    let base = d / m;
    let extra = d % m;
    let mut out = Vec::with_capacity(m - 1);
    let mut pos = 0;
    for i in 0..m - 1 {
        pos += base + usize::from(i < extra);
        out.push(pos);
    }
    out
}

/// Clusters the (descending) variance shares with 1-D k-means; since the
/// input is sorted, nearest-centroid assignment yields contiguous segments.
/// Splits the largest segments when k-means produces fewer than `m`.
fn clustered_boundaries(share: &[f64], m: usize, seed: u64) -> Result<Vec<usize>, VaqError> {
    let d = share.len();
    let labels = kmeans_1d(share, m, seed)?;
    // Walk in order; new segment whenever the cluster label changes.
    let mut boundaries = Vec::new();
    for i in 1..d {
        if labels[i] != labels[i - 1] {
            boundaries.push(i);
        }
    }
    // Too many segments (non-contiguous labels — only possible with exact
    // ties): merge the smallest adjacent pair until m segments remain.
    while boundaries.len() + 1 > m {
        // Remove the boundary whose merge loses least structure: the one
        // separating the two smallest segments.
        let ranges = boundaries_to_ranges(&boundaries, d);
        let mut best = 0;
        let mut best_size = usize::MAX;
        for (i, w) in ranges.windows(2).enumerate() {
            let size = (w[0].1 - w[0].0) + (w[1].1 - w[1].0);
            if size < best_size {
                best_size = size;
                best = i;
            }
        }
        boundaries.remove(best);
    }
    // Too few: split the widest segment in half until m segments exist.
    while boundaries.len() + 1 < m {
        let ranges = boundaries_to_ranges(&boundaries, d);
        let Some((widest, &(lo, hi))) =
            ranges.iter().enumerate().max_by_key(|(_, &(lo, hi))| hi - lo)
        else {
            // `boundaries_to_ranges` always yields at least one range.
            return Err(VaqError::BadConfig(format!(
                "cannot form {m} non-empty subspaces from {d} dimensions"
            )));
        };
        if hi - lo < 2 {
            return Err(VaqError::BadConfig(format!(
                "cannot form {m} non-empty subspaces from {d} dimensions"
            )));
        }
        let mid = lo + (hi - lo) / 2;
        boundaries.insert(widest, mid);
    }
    Ok(boundaries)
}

fn boundaries_to_ranges(boundaries: &[usize], d: usize) -> Vec<(usize, usize)> {
    let mut ranges = Vec::with_capacity(boundaries.len() + 1);
    let mut lo = 0;
    for &b in boundaries {
        ranges.push((lo, b));
        lo = b;
    }
    ranges.push((lo, d));
    ranges
}

/// Paper §III-B "Preserving Subspace Importance Ordering": when an earlier
/// subspace explains less total variance than the next one, move the first
/// dimension of the next subspace into it (shift the boundary right) until
/// the ordering holds.
fn repair_ordering(share: &[f64], boundaries: &mut [usize]) {
    let d = share.len();
    let var_of = |lo: usize, hi: usize| -> f64 { share[lo..hi].iter().sum() };
    loop {
        let ranges = boundaries_to_ranges(boundaries, d);
        let mut fixed = true;
        for i in 0..ranges.len() - 1 {
            let (lo0, hi0) = ranges[i];
            let (lo1, hi1) = ranges[i + 1];
            if var_of(lo0, hi0) < var_of(lo1, hi1) && hi1 - lo1 > 1 {
                // Move one dimension from subspace i+1 into subspace i.
                boundaries[i] += 1;
                fixed = false;
                break;
            }
        }
        if fixed {
            break;
        }
    }
}

/// Partial importance balancing (paper §III-C and Algorithm 2 lines 2–9):
/// keep each subspace's best PC in place and swap its 2nd, 3rd, ... best
/// PCs with the worst (last) PCs of the 2nd, 3rd, ... following subspaces —
/// reverting any swap that would break the descending subspace-variance
/// ordering, and stopping that subspace's swaps at the first violation.
fn partial_balance_swaps(perm: &mut [usize], share: &[f64], boundaries: &[usize]) {
    let d = share.len();
    let ranges = boundaries_to_ranges(boundaries, d);
    let m = ranges.len();
    let subspace_var = |perm: &[usize], r: &(usize, usize)| -> f64 {
        perm[r.0..r.1].iter().map(|&i| share[i]).sum()
    };
    let is_sorted = |perm: &[usize]| -> bool {
        let vars: Vec<f64> = ranges.iter().map(|r| subspace_var(perm, r)).collect();
        vars.windows(2).all(|w| w[0] >= w[1] - 1e-15)
    };

    for s in 0..m {
        let (lo, hi) = ranges[s];
        // j-th swap: position lo+j (the (j+1)-th best PC of subspace s)
        // with the last position of subspace s+j.
        for j in 1..hi - lo {
            let target = s + j;
            if target >= m {
                break;
            }
            let (_, thi) = ranges[target];
            let a = lo + j;
            let b = thi - 1;
            if a >= b {
                break;
            }
            perm.swap(a, b);
            if !is_sorted(perm) {
                perm.swap(a, b);
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A steep geometric spectrum.
    fn steep(d: usize) -> Vec<f64> {
        (0..d).map(|i| (0.6f64).powi(i as i32)).collect()
    }

    #[test]
    fn uniform_layout_splits_evenly() {
        let l = SubspaceLayout::build(&steep(12), 4, SubspaceMode::Uniform, false, 0).unwrap();
        assert_eq!(l.ranges, vec![(0, 3), (3, 6), (6, 9), (9, 12)]);
        assert_eq!(l.perm, (0..12).collect::<Vec<_>>());
        assert_eq!(l.num_subspaces(), 4);
        assert_eq!(l.dim(), 12);
    }

    #[test]
    fn uniform_layout_distributes_remainder() {
        let l = SubspaceLayout::build(&steep(10), 4, SubspaceMode::Uniform, false, 0).unwrap();
        let widths: Vec<usize> = l.ranges.iter().map(|&(lo, hi)| hi - lo).collect();
        assert_eq!(widths.iter().sum::<usize>(), 10);
        assert_eq!(widths, vec![3, 3, 2, 2]);
    }

    #[test]
    fn variance_share_descends_and_sums_to_one() {
        for mode in [SubspaceMode::Uniform, SubspaceMode::Clustered] {
            let l = SubspaceLayout::build(&steep(32), 8, mode, false, 1).unwrap();
            let total: f64 = l.variance_share.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{mode:?}: total {total}");
            for w in l.variance_share.windows(2) {
                assert!(
                    w[0] >= w[1] - 1e-12,
                    "{mode:?}: shares not descending {:?}",
                    l.variance_share
                );
            }
        }
    }

    #[test]
    fn clustered_mode_gives_nonuniform_widths_on_skewed_spectrum() {
        let l = SubspaceLayout::build(&steep(64), 8, SubspaceMode::Clustered, false, 3).unwrap();
        let widths: Vec<usize> = l.ranges.iter().map(|&(lo, hi)| hi - lo).collect();
        assert_eq!(widths.iter().sum::<usize>(), 64);
        assert_eq!(widths.len(), 8);
        let min = widths.iter().min().unwrap();
        let max = widths.iter().max().unwrap();
        assert!(max > min, "clustering a steep spectrum should give unequal widths: {widths:?}");
    }

    #[test]
    fn clustered_mode_exact_subspace_count() {
        for m in [2usize, 3, 5, 8, 16] {
            let l =
                SubspaceLayout::build(&steep(48), m, SubspaceMode::Clustered, false, 7).unwrap();
            assert_eq!(l.num_subspaces(), m);
            // Non-empty, contiguous, covering.
            assert_eq!(l.ranges[0].0, 0);
            assert_eq!(l.ranges.last().unwrap().1, 48);
            for w in l.ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0);
                assert!(w[0].1 > w[0].0);
            }
        }
    }

    #[test]
    fn perm_is_always_a_permutation() {
        for balance in [false, true] {
            for mode in [SubspaceMode::Uniform, SubspaceMode::Clustered] {
                let l = SubspaceLayout::build(&steep(40), 8, mode, balance, 11).unwrap();
                let mut p = l.perm.clone();
                p.sort_unstable();
                assert_eq!(p, (0..40).collect::<Vec<_>>(), "{mode:?}/{balance}");
            }
        }
    }

    #[test]
    fn partial_balance_preserves_global_ordering() {
        let l = SubspaceLayout::build(&steep(32), 8, SubspaceMode::Uniform, true, 0).unwrap();
        for w in l.variance_share.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "ordering broken: {:?}", l.variance_share);
        }
    }

    #[test]
    fn partial_balance_keeps_each_subspaces_top_pc() {
        let l = SubspaceLayout::build(&steep(32), 8, SubspaceMode::Uniform, true, 0).unwrap();
        // First position of every subspace must still hold the PC that led
        // that subspace before balancing (identity perm → index == lo).
        for &(lo, _) in &l.ranges {
            assert_eq!(l.perm[lo], lo, "subspace leader moved");
        }
    }

    #[test]
    fn partial_balance_spreads_importance() {
        // Variance gap between the first and last subspace must shrink (or
        // stay equal) after balancing.
        let gap = |balance: bool| {
            let l =
                SubspaceLayout::build(&steep(32), 8, SubspaceMode::Uniform, balance, 0).unwrap();
            l.variance_share[0] - l.variance_share[7]
        };
        assert!(gap(true) <= gap(false) + 1e-12);
    }

    #[test]
    fn ordering_repair_fixes_inverted_subspaces() {
        // Flat-ish spectrum where a wider later subspace would outweigh an
        // earlier narrow one without repair.
        let mut vars = vec![0.9, 0.5];
        vars.extend(std::iter::repeat_n(0.4, 6));
        let l = SubspaceLayout::build(&vars, 3, SubspaceMode::Clustered, false, 5).unwrap();
        for w in l.variance_share.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "repair failed: {:?}", l.variance_share);
        }
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(SubspaceLayout::build(&[], 1, SubspaceMode::Uniform, false, 0).is_err());
        assert!(SubspaceLayout::build(&steep(4), 0, SubspaceMode::Uniform, false, 0).is_err());
        assert!(SubspaceLayout::build(&steep(4), 5, SubspaceMode::Uniform, false, 0).is_err());
    }

    #[test]
    fn zero_variance_input_degrades_gracefully() {
        let l = SubspaceLayout::build(&[0.0; 8], 4, SubspaceMode::Uniform, true, 0).unwrap();
        let total: f64 = l.variance_share.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn m_equals_d_gives_singleton_subspaces() {
        let l = SubspaceLayout::build(&steep(6), 6, SubspaceMode::Uniform, false, 0).unwrap();
        assert!(l.ranges.iter().all(|&(lo, hi)| hi - lo == 1));
    }
}
