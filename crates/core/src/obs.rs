//! Structured observability: span timers, log-bucketed latency
//! histograms, monotonic counters, and structured events — dependency-free
//! and process-global, with Prometheus-text and JSON export.
//!
//! The subsystem follows the same discipline as [`crate::faults`]:
//!
//! * **Compile-time gate** — the `obs` cargo feature (on by default).
//!   Without it, [`enabled`] is constant `false`, every recording call
//!   folds to a no-op, and no registry is linked in.
//! * **Runtime gate** — even when compiled in, recording stays off until
//!   [`set_enabled`]`(true)`. A disabled instrumentation point costs one
//!   relaxed atomic load and never reads the clock, so steady-state query
//!   paths are unaffected unless a profiler opts in.
//!
//! Instrumented surfaces across the workspace:
//!
//! * the training stages (`train.varpca` → `train.subspace_plan` →
//!   `train.bit_plan` → `train.dictionaries` → `train.ti_build`) via
//!   [`span`] guards in [`crate::pipeline`],
//! * the query engine's phases (`query.table_refill`, `query.ti_prune`,
//!   `query.scan`, `query.qscan`, `query.rerank`),
//! * per-query wall time in the power-of-two-bucketed `query_latency`
//!   histogram,
//! * [`SearchStats`] folded into monotonic `search.*` counters after
//!   every query,
//! * structured [`EventRecord`]s, absorbing the always-on degradation
//!   log: [`crate::faults::note_degradation`] forwards every entry here
//!   as a `degradation` event (the drainable log itself keeps working),
//! * optionally, the SIMD accumulation kernels as `kernel.*` spans once
//!   [`install_kernel_timing`] has run.
//!
//! [`snapshot`] freezes everything into a [`Snapshot`] value that renders
//! as Prometheus text exposition ([`Snapshot::to_prometheus`]) or JSON
//! ([`Snapshot::to_json`]); `vaq_cli bench --profile` writes both.

use crate::search::SearchStats;
use std::time::Instant;

/// First histogram bucket upper bound: `2^8` = 256 ns.
const HIST_MIN_SHIFT: u32 = 8;
/// Number of finite histogram buckets; the last finite upper bound is
/// `2^(8 + 27)` ns ≈ 34 s, and anything beyond it lands in that bucket.
const HIST_BUCKETS: usize = 28;

/// The bucket an observation of `ns` nanoseconds falls into: the first
/// power of two ≥ `ns`, shifted so bucket 0 covers `(0, 256]` ns.
fn bucket_index(ns: u64) -> usize {
    let ceil_log2 = 64 - ns.max(1).saturating_sub(1).leading_zeros();
    (ceil_log2.saturating_sub(HIST_MIN_SHIFT) as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive upper bound (in ns) of histogram bucket `i`.
fn bucket_le_ns(i: usize) -> u64 {
    1u64 << (HIST_MIN_SHIFT + i as u32)
}

/// True when recording is compiled in (`obs` feature) *and* switched on
/// via [`set_enabled`]. Instrumentation points check this before touching
/// the clock or any registry.
#[inline(always)]
pub fn enabled() -> bool {
    // Under `cfg(loom)` the gate is pinned off: instrumentation is not
    // protocol state, and modeling one atomic load per instrumentation
    // point would multiply the schedule space of every loom scenario.
    #[cfg(all(feature = "obs", not(loom)))]
    {
        // ORDERING: Relaxed is enough for an on/off gate read in
        // isolation: no data is published *through* the flag — every
        // registry the instrumentation points touch afterwards is behind
        // its own Mutex, which provides the ordering. The only cost of
        // staleness is recording (or skipping) a few events around the
        // toggle, which `set_enabled`'s SeqCst store only bounds, never
        // eliminates.
        state::ENABLED.load(crate::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(any(not(feature = "obs"), loom))]
    {
        false
    }
}

/// Turns recording on or off. A no-op without the `obs` feature.
pub fn set_enabled(on: bool) {
    let _ = on;
    #[cfg(feature = "obs")]
    state::ENABLED.store(on, crate::sync::atomic::Ordering::SeqCst);
}

/// RAII span timer: created by [`span`], records its elapsed wall time
/// into the named span aggregate when dropped.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(t0) = self.start.take() {
            record_span_ns(self.name, t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Starts a span timer over `name` (e.g. `"train.varpca"`). When
/// recording is disabled the guard is inert and the clock is never read.
pub fn span(name: &'static str) -> Span {
    Span { name, start: if enabled() { Some(Instant::now()) } else { None } }
}

/// Records one completed span of `ns` nanoseconds under `name` without
/// going through a [`Span`] guard (used by the kernel timing hook).
pub fn record_span_ns(name: &'static str, ns: u64) {
    if !enabled() {
        return;
    }
    let _ = (name, ns);
    #[cfg(feature = "obs")]
    state::record_span(name, ns);
}

/// Adds `delta` to the monotonic counter `name`.
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    let _ = (name, delta);
    #[cfg(feature = "obs")]
    state::counter_add(name, delta);
}

/// Records one observation of `ns` nanoseconds into the log-bucketed
/// histogram `name`.
pub fn observe_ns(name: &'static str, ns: u64) {
    if !enabled() {
        return;
    }
    let _ = (name, ns);
    #[cfg(feature = "obs")]
    state::observe(name, ns);
}

/// Folds one query's [`SearchStats`] into the monotonic `search.*`
/// counters (plus `search.queries`), unifying the per-query counters with
/// the process-wide ones. The engine calls this after every search.
pub fn record_search_stats(stats: &SearchStats) {
    if !enabled() {
        return;
    }
    counter_add("search.queries", 1);
    counter_add("search.vectors_visited", stats.vectors_visited as u64);
    counter_add("search.vectors_skipped", stats.vectors_skipped as u64);
    counter_add("search.lookups", stats.lookups as u64);
    counter_add("search.lookups_skipped", stats.lookups_skipped as u64);
    counter_add("search.quantized_pruned", stats.quantized_pruned as u64);
    counter_add("search.table_reallocations", stats.table_reallocations as u64);
}

/// Records a structured event of `kind` (e.g. `"degradation"`) with a
/// free-form detail string. Events carry a process-wide monotonic
/// sequence number, so relative order is preserved across threads.
pub fn event(kind: &'static str, detail: &str) {
    if !enabled() {
        return;
    }
    let _ = (kind, detail);
    #[cfg(feature = "obs")]
    state::event(kind, detail);
}

/// Emits a `"degradation"` event when a blocked packing had to leave
/// packable subspaces on the exact path (a plan with more than
/// `MAX_PACKED_SUBSPACES` of them). The scan stays correct — the excess
/// subspaces' table minima fold into the pruning bound — but prunes less
/// sharply, which operators will want to see.
pub fn note_truncated_packing(packed: &vaq_linalg::PackedCodes, site: &str) {
    let t = packed.truncated_packable();
    if t > 0 {
        event(
            "degradation",
            &format!("{site}: packing truncated, {t} packable subspaces left on the exact path"),
        );
    }
}

/// Drains and returns the buffered events (aggregates are untouched).
pub fn take_events() -> Vec<EventRecord> {
    #[cfg(feature = "obs")]
    {
        state::take_events()
    }
    #[cfg(not(feature = "obs"))]
    {
        Vec::new()
    }
}

/// Clears every span, counter, histogram, and buffered event. The event
/// sequence counter keeps running, so ordering stays comparable across
/// resets. The enabled flag is untouched.
pub fn reset() {
    #[cfg(feature = "obs")]
    state::reset();
}

/// Freezes the current aggregates into a [`Snapshot`] (events are copied,
/// not drained). Returns an empty snapshot when the feature is off.
pub fn snapshot() -> Snapshot {
    #[cfg(feature = "obs")]
    {
        state::snapshot()
    }
    #[cfg(not(feature = "obs"))]
    {
        Snapshot::default()
    }
}

/// Installs the [`vaq_linalg`] kernel timing hook so quantized
/// accumulation time shows up as `kernel.*` spans. Idempotent; the hook
/// checks [`enabled`] itself, so installing it does not turn recording on
/// (but it does add one clock read per accumulation call, which is why
/// only profiling entry points install it).
pub fn install_kernel_timing() {
    vaq_linalg::install_kernel_timing_hook(kernel_hook);
}

fn kernel_hook(kernel: &'static str, ns: u64) {
    let name = match kernel {
        "scalar" => "kernel.scalar",
        "ssse3" => "kernel.ssse3",
        "avx2" => "kernel.avx2",
        _ => "kernel.other",
    };
    record_span_ns(name, ns);
}

// ---------------------------------------------------------------------------
// Snapshot value types + export (always compiled; they carry data only).
// ---------------------------------------------------------------------------

/// Aggregate of one named span: completions, cumulative and maximum
/// nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Span name (`stage.operation`).
    pub name: &'static str,
    /// Number of completed spans.
    pub count: u64,
    /// Total nanoseconds across all completions.
    pub total_ns: u64,
    /// Longest single completion in nanoseconds.
    pub max_ns: u64,
}

/// One log-bucketed histogram: `(upper_bound_ns, count)` per bucket
/// (non-cumulative), plus totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Histogram name (e.g. `query_latency`).
    pub name: &'static str,
    /// Per-bucket `(inclusive upper bound in ns, observations)`.
    pub buckets: Vec<(u64, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed nanoseconds.
    pub sum_ns: u64,
}

/// One structured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Process-wide monotonic sequence number (records relative order).
    pub seq: u64,
    /// Event kind, e.g. `"degradation"`.
    pub kind: &'static str,
    /// Free-form detail.
    pub detail: String,
}

/// A frozen copy of every observability aggregate, ready for export.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Span aggregates, sorted by name.
    pub spans: Vec<SpanStat>,
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Buffered events in sequence order.
    pub events: Vec<EventRecord>,
    /// Events discarded because the buffer was full (oldest first).
    pub events_dropped: u64,
}

fn fmt_seconds(ns: u64) -> String {
    format!("{}", ns as f64 / 1e9)
}

/// Prometheus metric-name characters: `[a-zA-Z0-9_]`, everything else
/// (the `.` in span names) becomes `_`.
fn prom_sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect()
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl Snapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (spans as paired `_count`/`_seconds` counters plus a `_max` gauge,
    /// counters as `vaq_counter_total`, histograms as native Prometheus
    /// histograms in seconds, events aggregated per kind).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("# HELP vaq_span_count_total Completions per instrumented span.\n");
            out.push_str("# TYPE vaq_span_count_total counter\n");
            for s in &self.spans {
                out.push_str(&format!("vaq_span_count_total{{span=\"{}\"}} {}\n", s.name, s.count));
            }
            out.push_str("# HELP vaq_span_seconds_total Cumulative wall time per span.\n");
            out.push_str("# TYPE vaq_span_seconds_total counter\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "vaq_span_seconds_total{{span=\"{}\"}} {}\n",
                    s.name,
                    fmt_seconds(s.total_ns)
                ));
            }
            out.push_str("# HELP vaq_span_seconds_max Longest single completion per span.\n");
            out.push_str("# TYPE vaq_span_seconds_max gauge\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "vaq_span_seconds_max{{span=\"{}\"}} {}\n",
                    s.name,
                    fmt_seconds(s.max_ns)
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("# HELP vaq_counter_total Monotonic workspace counters.\n");
            out.push_str("# TYPE vaq_counter_total counter\n");
            for &(name, v) in &self.counters {
                out.push_str(&format!("vaq_counter_total{{name=\"{name}\"}} {v}\n"));
            }
        }
        for h in &self.histograms {
            let metric = format!("vaq_{}_seconds", prom_sanitize(h.name));
            out.push_str(&format!("# HELP {metric} Log-bucketed latency histogram.\n"));
            out.push_str(&format!("# TYPE {metric} histogram\n"));
            let mut cum = 0u64;
            for &(le_ns, c) in &h.buckets {
                cum += c;
                out.push_str(&format!("{metric}_bucket{{le=\"{}\"}} {cum}\n", fmt_seconds(le_ns)));
            }
            out.push_str(&format!("{metric}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{metric}_sum {}\n", fmt_seconds(h.sum_ns)));
            out.push_str(&format!("{metric}_count {}\n", h.count));
        }
        if !self.events.is_empty() || self.events_dropped > 0 {
            out.push_str("# HELP vaq_events_total Structured events by kind.\n");
            out.push_str("# TYPE vaq_events_total counter\n");
            let mut kinds: Vec<&'static str> = self.events.iter().map(|e| e.kind).collect();
            kinds.sort_unstable();
            kinds.dedup();
            for kind in kinds {
                let c = self.events.iter().filter(|e| e.kind == kind).count();
                out.push_str(&format!("vaq_events_total{{kind=\"{kind}\"}} {c}\n"));
            }
            out.push_str(&format!("vaq_events_dropped_total {}\n", self.events_dropped));
        }
        out
    }

    /// Renders the snapshot as a JSON document (raw nanosecond integers;
    /// arrays of objects so names never need key escaping).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"count\": {}, \"total_ns\": {}, \"max_ns\": {}}}",
                s.name, s.count, s.total_ns, s.max_ns
            ));
        }
        out.push_str("\n  ],\n  \"counters\": [");
        for (i, &(name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {{\"name\": \"{name}\", \"value\": {v}}}"));
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"count\": {}, \"sum_ns\": {}, \"buckets\": [",
                h.name, h.count, h.sum_ns
            ));
            for (j, &(le_ns, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{{\"le_ns\": {le_ns}, \"count\": {c}}}"));
            }
            out.push_str("]}");
        }
        out.push_str("\n  ],\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"seq\": {}, \"kind\": \"{}\", \"detail\": \"",
                e.seq, e.kind
            ));
            json_escape(&e.detail, &mut out);
            out.push_str("\"}");
        }
        out.push_str(&format!("\n  ],\n  \"events_dropped\": {}\n}}\n", self.events_dropped));
        out
    }
}

// ---------------------------------------------------------------------------
// Recording state (compiled only with the `obs` feature).
// ---------------------------------------------------------------------------

#[cfg(feature = "obs")]
mod state {
    use super::{
        bucket_index, bucket_le_ns, EventRecord, HistogramSnapshot, Snapshot, SpanStat,
        HIST_BUCKETS,
    };
    use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use crate::sync::{Mutex, MutexGuard};
    use std::collections::{BTreeMap, VecDeque};

    pub(super) static ENABLED: AtomicBool = AtomicBool::new(false);
    static EVENT_SEQ: AtomicU64 = AtomicU64::new(0);

    /// Buffered-event cap; overflow drops the oldest entry and counts it.
    const EVENT_CAP: usize = 256;

    #[derive(Default, Clone, Copy)]
    struct SpanAgg {
        count: u64,
        total_ns: u64,
        max_ns: u64,
    }

    struct Hist {
        buckets: [u64; HIST_BUCKETS],
        count: u64,
        sum_ns: u64,
    }

    static SPANS: Mutex<BTreeMap<&'static str, SpanAgg>> = Mutex::new(BTreeMap::new());
    static COUNTERS: Mutex<BTreeMap<&'static str, u64>> = Mutex::new(BTreeMap::new());
    static HISTS: Mutex<BTreeMap<&'static str, Hist>> = Mutex::new(BTreeMap::new());
    /// `(ring, dropped)` — events in arrival order plus the overflow
    /// count. A `VecDeque` makes the overflow eviction O(1): the old
    /// `Vec::remove(0)` shifted all [`EVENT_CAP`] survivors on every
    /// event once the buffer was full.
    static EVENTS: Mutex<(VecDeque<EventRecord>, u64)> = Mutex::new((VecDeque::new(), 0));

    /// Recording must survive a panicked holder: recover the data instead
    /// of propagating the poison.
    fn lock<T>(m: &'static Mutex<T>) -> MutexGuard<'static, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(super) fn record_span(name: &'static str, ns: u64) {
        let mut spans = lock(&SPANS);
        let agg = spans.entry(name).or_default();
        agg.count += 1;
        agg.total_ns += ns;
        agg.max_ns = agg.max_ns.max(ns);
    }

    pub(super) fn counter_add(name: &'static str, delta: u64) {
        *lock(&COUNTERS).entry(name).or_insert(0) += delta;
    }

    pub(super) fn observe(name: &'static str, ns: u64) {
        let mut hists = lock(&HISTS);
        let h = hists.entry(name).or_insert_with(|| Hist {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum_ns: 0,
        });
        h.buckets[bucket_index(ns)] += 1;
        h.count += 1;
        h.sum_ns += ns;
    }

    pub(super) fn event(kind: &'static str, detail: &str) {
        // ORDERING: Relaxed suffices for a pure sequence-number ticket:
        // the RMW is atomic regardless of ordering, so tickets are
        // unique, and the record is published under the EVENTS mutex
        // below, which supplies all the cross-thread visibility readers
        // need. Nothing is ordered *against* the counter itself.
        let seq = EVENT_SEQ.fetch_add(1, Ordering::Relaxed);
        let mut events = lock(&EVENTS);
        while events.0.len() >= EVENT_CAP {
            events.0.pop_front();
            events.1 += 1;
        }
        events.0.push_back(EventRecord { seq, kind, detail: detail.to_string() });
    }

    pub(super) fn take_events() -> Vec<EventRecord> {
        std::mem::take(&mut lock(&EVENTS).0).into_iter().collect()
    }

    pub(super) fn reset() {
        lock(&SPANS).clear();
        lock(&COUNTERS).clear();
        lock(&HISTS).clear();
        let mut events = lock(&EVENTS);
        events.0.clear();
        events.1 = 0;
    }

    pub(super) fn snapshot() -> Snapshot {
        let spans = lock(&SPANS)
            .iter()
            .map(|(&name, agg)| SpanStat {
                name,
                count: agg.count,
                total_ns: agg.total_ns,
                max_ns: agg.max_ns,
            })
            .collect();
        let counters = lock(&COUNTERS).iter().map(|(&name, &v)| (name, v)).collect();
        let histograms = lock(&HISTS)
            .iter()
            .map(|(&name, h)| HistogramSnapshot {
                name,
                buckets: h.buckets.iter().enumerate().map(|(i, &c)| (bucket_le_ns(i), c)).collect(),
                count: h.count,
                sum_ns: h.sum_ns,
            })
            .collect();
        let events = lock(&EVENTS);
        Snapshot {
            spans,
            counters,
            histograms,
            events: events.0.iter().cloned().collect(),
            events_dropped: events.1,
        }
    }
}

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;
    use crate::sync::{Mutex, MutexGuard};

    /// The registries are process-global; serialize tests that touch them
    /// (other test modules never *drain* them, so filtering by our own
    /// names below stays race-free).
    static LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> MutexGuard<'static, ()> {
        let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        g
    }

    fn finish(g: MutexGuard<'static, ()>) {
        set_enabled(false);
        reset();
        drop(g);
    }

    #[test]
    fn bucket_index_matches_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(256), 0);
        assert_eq!(bucket_index(257), 1);
        assert_eq!(bucket_index(512), 1);
        assert_eq!(bucket_index(513), 2);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        for i in 0..HIST_BUCKETS {
            assert_eq!(bucket_index(bucket_le_ns(i)), i.min(HIST_BUCKETS - 1));
        }
    }

    #[test]
    fn truncated_packing_emits_a_degradation_event() {
        let g = guard();
        // 260 two-entry subspaces: 257 pack, 3 degrade to the exact path.
        let m = 260;
        let codes = vec![0u16; m];
        let sizes = vec![2usize; m];
        let packed = vaq_linalg::PackedCodes::pack(&codes, &sizes, 1);
        assert!(packed.truncated_packable() > 0);
        note_truncated_packing(&packed, "obs-test.site");
        // A fully packed plan stays silent.
        let full = vaq_linalg::PackedCodes::pack(&codes[..4], &sizes[..4], 1);
        note_truncated_packing(&full, "obs-test.site");
        let events = take_events();
        let mine: Vec<_> =
            events.iter().filter(|e| e.detail.starts_with("obs-test.site")).collect();
        assert_eq!(mine.len(), 1, "{events:?}");
        assert_eq!(mine[0].kind, "degradation");
        assert!(mine[0].detail.contains("3 packable subspaces"), "{}", mine[0].detail);
        finish(g);
    }

    #[test]
    fn disabled_recording_is_inert() {
        let g = guard();
        set_enabled(false);
        record_span_ns("obs-test.inert", 100);
        counter_add("obs-test.inert", 1);
        observe_ns("obs-test.inert", 100);
        event("obs-test", "inert");
        let snap = snapshot();
        assert!(snap.spans.iter().all(|s| s.name != "obs-test.inert"));
        assert!(snap.counters.iter().all(|&(n, _)| n != "obs-test.inert"));
        assert!(snap.events.iter().all(|e| e.kind != "obs-test"));
        finish(g);
    }

    #[test]
    fn spans_counters_and_histograms_aggregate() {
        let g = guard();
        record_span_ns("obs-test.stage", 100);
        record_span_ns("obs-test.stage", 300);
        counter_add("obs-test.counter", 2);
        counter_add("obs-test.counter", 3);
        observe_ns("obs-test.hist", 200);
        observe_ns("obs-test.hist", 300);
        observe_ns("obs-test.hist", 5_000);
        let snap = snapshot();
        let s = snap.spans.iter().find(|s| s.name == "obs-test.stage").unwrap();
        assert_eq!((s.count, s.total_ns, s.max_ns), (2, 400, 300));
        let &(_, v) = snap.counters.iter().find(|&&(n, _)| n == "obs-test.counter").unwrap();
        assert_eq!(v, 5);
        let h = snap.histograms.iter().find(|h| h.name == "obs-test.hist").unwrap();
        assert_eq!((h.count, h.sum_ns), (3, 5_500));
        assert_eq!(h.buckets[bucket_index(200)].1, 1);
        assert_eq!(h.buckets[bucket_index(300)].1, 1);
        assert_eq!(h.buckets[bucket_index(5_000)].1, 1);
        assert_eq!(h.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 3);
        finish(g);
    }

    #[test]
    fn span_guard_records_on_drop_only_when_enabled() {
        let g = guard();
        {
            let _s = span("obs-test.guard");
        }
        assert!(snapshot().spans.iter().any(|s| s.name == "obs-test.guard" && s.count == 1));
        set_enabled(false);
        {
            let _s = span("obs-test.guard");
        }
        set_enabled(true);
        let s = snapshot().spans.into_iter().find(|s| s.name == "obs-test.guard").unwrap();
        assert_eq!(s.count, 1, "disabled guard must not record");
        finish(g);
    }

    #[test]
    fn search_stats_fold_into_counters() {
        let g = guard();
        let stats = SearchStats {
            vectors_visited: 10,
            vectors_skipped: 20,
            lookups: 30,
            lookups_skipped: 40,
            quantized_pruned: 50,
            table_reallocations: 1,
        };
        record_search_stats(&stats);
        record_search_stats(&stats);
        let snap = snapshot();
        let get = |name: &str| {
            snap.counters.iter().find(|&&(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0)
        };
        assert_eq!(get("search.queries"), 2);
        assert_eq!(get("search.vectors_visited"), 20);
        assert_eq!(get("search.quantized_pruned"), 100);
        assert_eq!(get("search.table_reallocations"), 2);
        finish(g);
    }

    #[test]
    fn degradations_surface_as_ordered_events() {
        // Satellite check: the always-on degradation log is absorbed into
        // structured events, preserving relative order, while the legacy
        // drainable log keeps working.
        let g = guard();
        crate::faults::note_degradation("obs-test: first fallback");
        crate::faults::note_degradation("obs-test: second fallback");
        let events = take_events();
        let mine: Vec<&EventRecord> =
            events.iter().filter(|e| e.detail.starts_with("obs-test:")).collect();
        assert_eq!(mine.len(), 2, "events: {events:?}");
        assert_eq!(mine[0].kind, "degradation");
        assert_eq!(mine[0].detail, "obs-test: first fallback");
        assert_eq!(mine[1].detail, "obs-test: second fallback");
        assert!(mine[0].seq < mine[1].seq, "sequence numbers out of order");
        let log = crate::faults::take_degradations();
        assert!(log.contains(&"obs-test: first fallback"));
        finish(g);
    }

    #[test]
    fn event_buffer_caps_and_counts_drops() {
        let g = guard();
        for i in 0..300 {
            event("obs-test", &format!("e{i}"));
        }
        let snap = snapshot();
        let mine = snap.events.iter().filter(|e| e.kind == "obs-test").count();
        assert!(mine <= 256);
        assert!(snap.events_dropped >= 44, "dropped {}", snap.events_dropped);
        // The newest events survive.
        assert!(snap.events.iter().any(|e| e.detail == "e299"));
        finish(g);
    }

    #[test]
    fn event_ring_wraparound_keeps_order_and_sequence() {
        // Push several capacities' worth so the ring wraps repeatedly;
        // the survivors must be exactly the newest window, in arrival
        // order, with strictly increasing sequence numbers and a drop
        // counter accounting for every evicted event.
        let g = guard();
        let total = 256 * 3 + 17;
        for i in 0..total {
            event("obs-test", &format!("w{i}"));
        }
        let snap = snapshot();
        // Concurrent (non-obs) tests may interleave events of their own,
        // so assert only on the events this test emitted: the survivors
        // are a *contiguous suffix* of what was pushed, in arrival order.
        let mine: Vec<&EventRecord> = snap.events.iter().filter(|e| e.kind == "obs-test").collect();
        assert!(!mine.is_empty() && mine.len() <= 256, "kept {}", mine.len());
        assert_eq!(mine.last().unwrap().detail, format!("w{}", total - 1), "newest survivor");
        let first: usize = mine[0].detail.strip_prefix('w').unwrap().parse().unwrap();
        for (off, e) in mine.iter().enumerate() {
            assert_eq!(e.detail, format!("w{}", first + off), "gap after wraparound");
        }
        for pair in mine.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "sequence numbers must stay monotonic");
        }
        assert!(
            snap.events_dropped as usize >= total - 256,
            "evictions undercounted: {}",
            snap.events_dropped
        );
        // Draining after wraparound returns the same ordered window.
        let drained: Vec<EventRecord> =
            take_events().into_iter().filter(|e| e.kind == "obs-test").collect();
        assert_eq!(drained.len(), mine.len());
        assert_eq!(drained[0].detail, format!("w{first}"));
        finish(g);
    }

    #[test]
    fn prometheus_export_contains_expected_families() {
        let g = guard();
        record_span_ns("obs-test.stage", 1_000_000);
        counter_add("search.lookups", 7);
        observe_ns("query_latency", 2_000);
        event("degradation", "obs-test: x");
        let text = snapshot().to_prometheus();
        assert!(text.contains("vaq_span_seconds_total{span=\"obs-test.stage\"} 0.001"));
        assert!(text.contains("vaq_counter_total{name=\"search.lookups\"} 7"));
        assert!(text.contains("vaq_query_latency_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("vaq_query_latency_seconds_count 1"));
        assert!(text.contains("vaq_events_total{kind=\"degradation\"} 1"));
        // Cumulative buckets never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("vaq_query_latency_seconds_bucket")) {
            let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v as u64 >= last, "bucket counts decreased: {line}");
            last = v as u64;
        }
        finish(g);
    }

    #[test]
    fn json_export_escapes_details() {
        let g = guard();
        event("obs-test", "quote \" backslash \\ newline \n done");
        let json = snapshot().to_json();
        assert!(json.contains("quote \\\" backslash \\\\ newline \\n done"));
        finish(g);
    }

    #[test]
    fn reset_clears_aggregates_but_keeps_sequence_monotonic() {
        let g = guard();
        event("obs-test", "before");
        let seq_before = take_events().last().unwrap().seq;
        reset();
        // Concurrent (non-obs) tests may record while obs is enabled here,
        // so only assert on state this test owns: its own events are gone.
        assert!(snapshot().events.iter().all(|e| e.kind != "obs-test"));
        event("obs-test", "after");
        let seq_after = take_events().last().unwrap().seq;
        assert!(seq_after > seq_before);
        finish(g);
    }
}
