//! Shared worker-count policy for the workspace's scoped-thread sites
//! (the query engine's batch path, [`crate::encoder`]'s bulk encode, and
//! the TI partition build).
//!
//! All three honor the `VAQ_THREADS` environment variable the same way
//! [`vaq_linalg`]'s kernel dispatch honors `VAQ_FORCE_SCALAR`: set it to
//! a positive integer to pin the thread budget (e.g. `VAQ_THREADS=1` for
//! deterministic single-threaded runs under a profiler), leave it unset
//! (or set it to something unparsable) to fall back to
//! [`std::thread::available_parallelism`]. The value is read once per
//! process and cached.

use crate::sync::{thread, OnceLock};

/// Parses a `VAQ_THREADS` value: trimmed positive integer, anything else
/// (empty, zero, garbage) means "no override".
fn parse_threads(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok()).filter(|&n| n > 0)
}

/// The process-wide thread budget: the `VAQ_THREADS` override when set,
/// otherwise the detected hardware parallelism (at least 1).
pub fn thread_budget() -> usize {
    static BUDGET: OnceLock<usize> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        let raw = std::env::var("VAQ_THREADS").ok();
        parse_threads(raw.as_deref())
            .unwrap_or_else(|| thread::available_parallelism().map(|p| p.get()).unwrap_or(1))
    })
}

/// Worker count for a job of `units` independent work items: the thread
/// budget clamped to `[1, units]` so no worker starts idle.
pub fn worker_count(units: usize) -> usize {
    thread_budget().clamp(1, units.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_positive_integers_only() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some("  8 ")), Some(8));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("two")), None);
        assert_eq!(parse_threads(Some("-3")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn worker_count_clamps_to_units() {
        let budget = thread_budget();
        assert!(budget >= 1);
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(usize::MAX) == budget);
        assert!(worker_count(2) <= 2);
    }
}
