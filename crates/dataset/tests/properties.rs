//! Property tests for the workload generators and ground truth.

use proptest::prelude::*;
use vaq_dataset::ground_truth::exact_knn_single;
use vaq_dataset::{exact_knn, z_normalize, SyntheticSpec, UcrFamily};
use vaq_linalg::{squared_euclidean, Matrix};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ground_truth_is_sorted_and_optimal(
        data in proptest::collection::vec(-10.0f32..10.0, 60..200),
        qseed in 0usize..10,
    ) {
        let cols = 4;
        let rows = data.len() / cols;
        prop_assume!(rows >= 5);
        let m = Matrix::from_vec(rows, cols, data[..rows * cols].to_vec());
        let q = m.row(qseed % rows).to_vec();
        let nn = exact_knn_single(&m, &q, 5);
        // Sorted by true distance.
        let dists: Vec<f32> =
            nn.iter().map(|&i| squared_euclidean(m.row(i as usize), &q)).collect();
        for w in dists.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-6);
        }
        // Nothing outside the answer is closer than the worst answer.
        let worst = dists.last().copied().unwrap_or(f32::INFINITY);
        for i in 0..rows {
            if !nn.contains(&(i as u32)) {
                let d = squared_euclidean(m.row(i), &q);
                prop_assert!(d >= worst - 1e-5, "row {i} closer than returned set");
            }
        }
    }

    #[test]
    fn z_normalize_idempotent(
        data in proptest::collection::vec(-100.0f32..100.0, 32..128),
    ) {
        let cols = 16;
        let rows = data.len() / cols;
        prop_assume!(rows >= 1);
        let mut m = Matrix::from_vec(rows, cols, data[..rows * cols].to_vec());
        z_normalize(&mut m);
        let once = m.clone();
        z_normalize(&mut m);
        for i in 0..rows {
            for j in 0..cols {
                prop_assert!((m.get(i, j) - once.get(i, j)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn generators_are_seed_deterministic(seed in 0u64..1000, n in 10usize..40) {
        let a = SyntheticSpec::deep_like().generate(n, 2, seed);
        let b = SyntheticSpec::deep_like().generate(n, 2, seed);
        prop_assert_eq!(a.data, b.data);
        let fa = UcrFamily::Cbf.generate(64, n, 2, seed);
        let fb = UcrFamily::Cbf.generate(64, n, 2, seed);
        prop_assert_eq!(fa.data, fb.data);
    }

    #[test]
    fn batch_ground_truth_matches_single(seed in 0u64..50) {
        let ds = SyntheticSpec::deep_like().generate(80, 6, seed);
        let batch = exact_knn(&ds.data, &ds.queries, 4);
        for q in 0..ds.queries.rows() {
            prop_assert_eq!(&batch[q], &exact_knn_single(&ds.data, ds.queries.row(q), 4));
        }
    }
}
