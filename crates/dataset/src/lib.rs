//! Synthetic workloads standing in for the VAQ paper's datasets.
//!
//! The paper evaluates on five proprietary/large downloads (SIFT, DEEP,
//! SALD, SEISMIC, ASTRO — §IV "Datasets") plus the 128 datasets of the UCR
//! archive. None of those can ship with this reproduction, so this crate
//! generates synthetic equivalents that preserve the property the paper's
//! claims hinge on: the **skew of the covariance eigen-spectrum** (how much
//! variance the top principal components absorb) and the noise floor, which
//! together decide how much adaptive bit allocation can win over uniform
//! allocation and how well early-abandoning prunes.
//!
//! * [`largescale`] — SIFT/DEEP/SALD/SEISMIC/ASTRO-like generators.
//! * [`ucr`] — medium-scale series families (CBF, two-pattern,
//!   StarLightCurves-like, ...) and a 128-dataset archive generator.
//! * [`ground_truth`] — exact k-NN for recall/MAP evaluation.
//!
//! All generators are deterministic functions of their seed.

#![forbid(unsafe_code)]

pub mod ground_truth;
pub mod io;
pub mod largescale;
pub mod rng;
pub mod ucr;

pub use ground_truth::exact_knn;
pub use largescale::{Post, SyntheticSpec, LARGE_SCALE_NAMES};
pub use ucr::{ucr_like_archive, UcrFamily};

use vaq_linalg::Matrix;

/// A dataset bundle: base vectors to index plus query vectors.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Short identifier (e.g. `"sift-like"`).
    pub name: String,
    /// Base/train vectors, one per row.
    pub data: Matrix,
    /// Query vectors, one per row (same dimensionality).
    pub queries: Matrix,
}

impl Dataset {
    /// Number of base vectors.
    pub fn len(&self) -> usize {
        self.data.rows()
    }

    /// `true` when there are no base vectors.
    pub fn is_empty(&self) -> bool {
        self.data.rows() == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.data.cols()
    }
}

/// Z-normalizes each row in place: zero mean, unit standard deviation.
/// Constant rows are left at zero (matching UCR archive preprocessing).
pub fn z_normalize(m: &mut Matrix) {
    let cols = m.cols();
    if cols == 0 {
        return;
    }
    for i in 0..m.rows() {
        let row = m.row_mut(i);
        let mean: f32 = row.iter().sum::<f32>() / cols as f32;
        let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
        let std = var.sqrt();
        if std > 1e-12 {
            let inv = 1.0 / std;
            for v in row.iter_mut() {
                *v = (*v - mean) * inv;
            }
        } else {
            for v in row.iter_mut() {
                *v = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_normalize_gives_zero_mean_unit_std() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0], vec![10.0, 10.0, 20.0, 20.0]]);
        z_normalize(&mut m);
        for i in 0..2 {
            let row = m.row(i);
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-6);
            assert!((var - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn z_normalize_constant_row_becomes_zero() {
        let mut m = Matrix::from_rows(&[vec![7.0, 7.0, 7.0]]);
        z_normalize(&mut m);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn dataset_accessors() {
        let d =
            Dataset { name: "t".into(), data: Matrix::zeros(5, 3), queries: Matrix::zeros(2, 3) };
        assert_eq!(d.len(), 5);
        assert_eq!(d.dim(), 3);
        assert!(!d.is_empty());
    }
}
