//! Medium-scale series generators modeled on the UCR archive families.
//!
//! The paper's statistical study (§V-D, Table II, Fig. 10) runs over all 128
//! UCR datasets — heterogeneous, z-normalized time series from many domains,
//! lengths up to 2,844, up to 24,000 sequences. The archive cannot ship with
//! this reproduction, so [`ucr_like_archive`] generates 128 datasets from
//! eight parametric families that span the same axes the archive does:
//! smooth vs noisy, short vs long, few vs many classes. Two of the families
//! are faithful re-implementations of published generators the paper itself
//! discusses (Fig. 3): CBF (cylinder–bell–funnel) and a
//! StarLightCurves-like smooth periodic family.

use crate::rng::gaussian;
use crate::{z_normalize, Dataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vaq_linalg::Matrix;

/// The eight generator families used to build the synthetic archive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UcrFamily {
    /// Cylinder–bell–funnel: the classic 3-class benchmark (high noise).
    Cbf,
    /// StarLightCurves-like: smooth periodic curves, 3 classes, low noise.
    SlcLike,
    /// Two-pattern: step patterns at random offsets, 4 classes.
    TwoPatterns,
    /// Sine waves with class-specific frequency and random phase.
    SineFamily,
    /// Random walks with class-specific drift.
    RandomWalk,
    /// Noise floor with class-positioned bursts.
    Burst,
    /// Gaussian bumps whose position encodes the class.
    Bumps,
    /// Piecewise-constant level shifts (Square-wave like).
    Levels,
}

impl UcrFamily {
    /// All families, used round-robin by the archive generator.
    pub fn all() -> [UcrFamily; 8] {
        [
            UcrFamily::Cbf,
            UcrFamily::SlcLike,
            UcrFamily::TwoPatterns,
            UcrFamily::SineFamily,
            UcrFamily::RandomWalk,
            UcrFamily::Burst,
            UcrFamily::Bumps,
            UcrFamily::Levels,
        ]
    }

    /// Number of classes this family generates.
    pub fn classes(&self) -> usize {
        match self {
            UcrFamily::Cbf | UcrFamily::SlcLike => 3,
            UcrFamily::TwoPatterns => 4,
            UcrFamily::SineFamily => 5,
            UcrFamily::RandomWalk => 3,
            UcrFamily::Burst => 4,
            UcrFamily::Bumps => 6,
            UcrFamily::Levels => 4,
        }
    }

    /// Family name for dataset labels.
    pub fn name(&self) -> &'static str {
        match self {
            UcrFamily::Cbf => "cbf",
            UcrFamily::SlcLike => "slc",
            UcrFamily::TwoPatterns => "twopat",
            UcrFamily::SineFamily => "sine",
            UcrFamily::RandomWalk => "rwalk",
            UcrFamily::Burst => "burst",
            UcrFamily::Bumps => "bumps",
            UcrFamily::Levels => "levels",
        }
    }

    /// Generates one series of the given class and length.
    pub fn generate_series(&self, class: usize, len: usize, rng: &mut StdRng) -> Vec<f32> {
        let mut out = vec![0.0f32; len];
        match self {
            UcrFamily::Cbf => cbf_series(class, &mut out, rng),
            UcrFamily::SlcLike => slc_series(class, &mut out, rng),
            UcrFamily::TwoPatterns => two_patterns_series(class, &mut out, rng),
            UcrFamily::SineFamily => {
                let freq = (class + 1) as f32 * 2.0;
                let phase = std::f32::consts::TAU * rng.gen::<f32>();
                for (t, v) in out.iter_mut().enumerate() {
                    let x = t as f32 / len as f32;
                    *v = (std::f32::consts::TAU * freq * x + phase).sin()
                        + 0.3 * gaussian(rng) as f32;
                }
            }
            UcrFamily::RandomWalk => {
                let drift = (class as f32 - 1.0) * 0.05;
                let mut acc = 0.0f32;
                for v in out.iter_mut() {
                    acc += drift + gaussian(rng) as f32 * 0.5;
                    *v = acc;
                }
            }
            UcrFamily::Burst => {
                for v in out.iter_mut() {
                    *v = 0.2 * gaussian(rng) as f32;
                }
                let seg = len / 4;
                let start = class * seg + rng.gen_range(0..seg.max(1) / 2 + 1);
                let blen = (seg / 2).max(2).min(len - start.min(len - 1));
                let amp = 3.0 + rng.gen::<f32>();
                for t in 0..blen {
                    let idx = (start + t).min(len - 1);
                    let w = (std::f32::consts::PI * t as f32 / blen as f32).sin();
                    out[idx] += amp * w;
                }
            }
            UcrFamily::Bumps => {
                for v in out.iter_mut() {
                    *v = 0.15 * gaussian(rng) as f32;
                }
                let center = (class as f32 + 0.5) / self.classes() as f32 * len as f32;
                let width = len as f32 / 12.0;
                for (t, v) in out.iter_mut().enumerate() {
                    let z = (t as f32 - center) / width;
                    *v += 2.5 * (-0.5 * z * z).exp();
                }
            }
            UcrFamily::Levels => {
                let seg = (len / 4).max(1);
                let pattern: [f32; 4] = match class {
                    0 => [1.0, -1.0, 1.0, -1.0],
                    1 => [-1.0, 1.0, -1.0, 1.0],
                    2 => [1.0, 1.0, -1.0, -1.0],
                    _ => [-1.0, -1.0, 1.0, 1.0],
                };
                for (t, v) in out.iter_mut().enumerate() {
                    *v = pattern[(t / seg).min(3)] + 0.25 * gaussian(rng) as f32;
                }
            }
        }
        out
    }

    /// Generates a full dataset: `n_train` base series and `n_test` query
    /// series, classes round-robin, everything z-normalized.
    pub fn generate(&self, len: usize, n_train: usize, n_test: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = self.classes();
        let mut data = Matrix::zeros(n_train, len);
        for i in 0..n_train {
            let row = self.generate_series(i % k, len, &mut rng);
            data.row_mut(i).copy_from_slice(&row);
        }
        let mut queries = Matrix::zeros(n_test, len);
        for i in 0..n_test {
            let row = self.generate_series(i % k, len, &mut rng);
            queries.row_mut(i).copy_from_slice(&row);
        }
        z_normalize(&mut data);
        z_normalize(&mut queries);
        Dataset { name: format!("{}-{}", self.name(), len), data, queries }
    }
}

/// Classic cylinder–bell–funnel generator (Saito 1994), the exact dataset
/// the paper's Figure 3a illustrates. Class 0 = cylinder, 1 = bell,
/// 2 = funnel.
fn cbf_series(class: usize, out: &mut [f32], rng: &mut StdRng) {
    let n = out.len();
    // Plateau boundaries: a ~ U[n/8, n/4], b-a ~ U[n/4, 3n/4].
    let a = rng.gen_range(n / 8..n / 4 + 1);
    let b = (a + rng.gen_range(n / 4..3 * n / 4 + 1)).min(n - 1);
    let amp = 6.0 + gaussian(rng) as f32;
    for (t, v) in out.iter_mut().enumerate() {
        let shape = if t < a || t > b {
            0.0
        } else {
            match class {
                0 => 1.0,                                    // cylinder
                1 => (t - a) as f32 / (b - a).max(1) as f32, // bell: ramp up
                _ => (b - t) as f32 / (b - a).max(1) as f32, // funnel: ramp down
            }
        };
        *v = amp * shape + gaussian(rng) as f32;
    }
}

/// StarLightCurves-like smooth periodic generator (the paper's Figure 3b):
/// low noise, class-specific eclipse shapes, long smooth curves.
fn slc_series(class: usize, out: &mut [f32], rng: &mut StdRng) {
    let n = out.len();
    let phase = std::f32::consts::TAU * rng.gen::<f32>();
    for (t, v) in out.iter_mut().enumerate() {
        let x = t as f32 / n as f32;
        let base = match class {
            // Eclipsing binary: two sharp dips per period.
            0 => {
                let c = (std::f32::consts::TAU * x + phase).cos();
                -(c.abs().powf(8.0)) * 2.0
            }
            // Cepheid: asymmetric sawtooth-like pulse.
            1 => {
                let ph = (x + phase / std::f32::consts::TAU).fract();
                if ph < 0.3 {
                    ph / 0.3
                } else {
                    1.0 - (ph - 0.3) / 0.7
                }
            }
            // RR Lyrae: sharper rise.
            _ => {
                let ph = (x + phase / std::f32::consts::TAU).fract();
                if ph < 0.15 {
                    ph / 0.15
                } else {
                    (1.0 - (ph - 0.15) / 0.85).powf(2.0)
                }
            }
        };
        *v = base + 0.02 * gaussian(rng) as f32;
    }
    // Smooth lightly for the characteristic low-noise look.
    let src = out.to_vec();
    for i in 1..n - 1 {
        out[i] = (src[i - 1] + src[i] + src[i + 1]) / 3.0;
    }
}

/// Two-pattern generator: an up-up / up-down / down-up / down-down pair of
/// step patterns at random offsets.
fn two_patterns_series(class: usize, out: &mut [f32], rng: &mut StdRng) {
    let n = out.len();
    for v in out.iter_mut() {
        *v = 0.3 * gaussian(rng) as f32;
    }
    let (first_up, second_up) = match class {
        0 => (true, true),
        1 => (true, false),
        2 => (false, true),
        _ => (false, false),
    };
    let w = (n / 8).max(2);
    let p1 = rng.gen_range(0..n / 2 - w);
    let p2 = rng.gen_range(n / 2..n - w);
    for (pos, up) in [(p1, first_up), (p2, second_up)] {
        let sign = if up { 1.0 } else { -1.0 };
        for t in 0..w {
            out[pos + t] += sign * if t < w / 2 { -1.0 } else { 1.0 } * 2.0;
        }
    }
}

/// Generates the full 128-dataset synthetic archive.
///
/// Datasets cycle through the eight families with lengths from 64 to 1024
/// and per-dataset seeds, mirroring the heterogeneity of the UCR archive.
/// `n_train`/`n_test` control the per-dataset sizes (the real archive has up
/// to 24k series; defaults in the bench harness use a few hundred to keep
/// runtimes laptop-scale — scale up with `--scale`).
pub fn ucr_like_archive(n_train: usize, n_test: usize, seed: u64) -> Vec<Dataset> {
    // The real archive reaches length 2,844; the default archive caps at
    // 256 so the 128-dataset × 8-method sweeps stay tractable on one core
    // (the eigendecomposition behind OPQ/VAQ is O(d³) per dataset). The
    // family generators themselves accept any length.
    let lengths = [64usize, 96, 128, 192, 256];
    let families = UcrFamily::all();
    let mut out = Vec::with_capacity(128);
    for i in 0..128 {
        let family = families[i % families.len()];
        let len = lengths[(i / families.len()) % lengths.len()];
        let ds_seed = seed ^ (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
        let mut ds = family.generate(len, n_train, n_test, ds_seed);
        ds.name = format!("{}-{:03}", ds.name, i);
        out.push(ds);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_linalg::Pca;

    #[test]
    fn cbf_has_three_distinguishable_classes() {
        let f = UcrFamily::Cbf;
        let ds = f.generate(128, 90, 9, 1);
        assert_eq!(ds.data.shape(), (90, 128));
        // Class means should differ: compare mean series of class 0 vs 1.
        let mean_of = |class: usize| -> Vec<f32> {
            let mut m = vec![0.0f32; 128];
            let mut count = 0;
            for i in (class..90).step_by(3) {
                for (a, &b) in m.iter_mut().zip(ds.data.row(i).iter()) {
                    *a += b;
                }
                count += 1;
            }
            m.iter().map(|v| v / count as f32).collect()
        };
        let d01 = vaq_linalg::euclidean(&mean_of(0), &mean_of(1));
        assert!(d01 > 1.0, "cylinder and bell class means too close: {d01}");
    }

    #[test]
    fn slc_is_much_smoother_than_cbf() {
        // The paper picks CBF/SLC for their high/low noise. Total variation
        // of z-normalized series captures that.
        let mut rng = StdRng::seed_from_u64(3);
        let mut tv = |fam: UcrFamily| {
            let mut total = 0.0f32;
            for c in 0..3 {
                let mut s = fam.generate_series(c, 256, &mut rng);
                let m = Matrix::from_rows(&[s.clone()]);
                let mut m = m;
                z_normalize(&mut m);
                s.copy_from_slice(m.row(0));
                total += s.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f32>();
            }
            total
        };
        let tv_cbf = tv(UcrFamily::Cbf);
        let tv_slc = tv(UcrFamily::SlcLike);
        assert!(tv_slc < tv_cbf * 0.5, "SLC tv {tv_slc} vs CBF tv {tv_cbf}");
    }

    #[test]
    fn slc_spectrum_more_concentrated_than_cbf() {
        // Fig. 3c/3d: SLC's first PCs explain more variance than CBF's.
        let cbf = UcrFamily::Cbf.generate(128, 300, 1, 5);
        let slc = UcrFamily::SlcLike.generate(128, 300, 1, 5);
        let top3 = |m: &Matrix| {
            Pca::fit(m).unwrap().explained_variance_ratio().iter().take(3).sum::<f64>()
        };
        let c = top3(&cbf.data);
        let s = top3(&slc.data);
        assert!(s > c, "SLC top-3 {s:.3} should exceed CBF {c:.3}");
    }

    #[test]
    fn all_families_generate_finite_normalized_series() {
        for fam in UcrFamily::all() {
            let ds = fam.generate(64, 24, 6, 9);
            assert!(ds.data.as_slice().iter().all(|v| v.is_finite()), "{:?}", fam);
            for row in ds.data.iter_rows() {
                let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
                assert!(mean.abs() < 1e-4, "{:?} not z-normalized", fam);
            }
        }
    }

    #[test]
    fn archive_has_128_distinct_datasets() {
        let arch = ucr_like_archive(20, 5, 42);
        assert_eq!(arch.len(), 128);
        let mut names: Vec<&str> = arch.iter().map(|d| d.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 128, "dataset names must be unique");
        // Lengths vary.
        let dims: std::collections::BTreeSet<usize> = arch.iter().map(|d| d.dim()).collect();
        assert!(dims.len() >= 4, "expected length diversity, got {dims:?}");
    }

    #[test]
    fn archive_deterministic() {
        let a = ucr_like_archive(10, 3, 7);
        let b = ucr_like_archive(10, 3, 7);
        assert_eq!(a[17].data, b[17].data);
    }

    #[test]
    fn class_count_accessor_consistent() {
        for fam in UcrFamily::all() {
            assert!(fam.classes() >= 3);
            assert!(!fam.name().is_empty());
        }
    }
}
