//! Generators standing in for the paper's five large-scale datasets.
//!
//! What matters for reproducing the paper's *comparisons* is not the pixel
//! content of SIFT descriptors but two statistical knobs:
//!
//! 1. **Eigen-spectrum decay** — how fast the sorted covariance eigenvalues
//!    fall off. Steep decay (smooth series like SALD) concentrates variance
//!    in few PCs, which is where uniform balancing (OPQ) struggles and
//!    adaptive allocation (VAQ) wins. Flat decay (noisy SEISMIC, normalized
//!    DEEP) compresses everyone equally.
//! 2. **Cluster structure** — mixture components make triangle-inequality
//!    partitioning effective and give k-means dictionaries something to
//!    learn.
//!
//! Each generator composes a latent Gaussian with a power-law variance
//! profile `λ_i ∝ (i+1)^{-α}`, a fixed rotation so no coordinate is
//! axis-aligned, and a mixture of cluster centers — then applies the
//! dataset-specific post-processing (clipping for SIFT's non-negative
//! histograms, ℓ2 normalization for DEEP, random-walk smoothing for SALD,
//! burst injection for SEISMIC, periodic structure for ASTRO).
//!
//! Queries follow the paper's protocol (§IV "Queries"): sampled from the
//! same distribution, with *progressively increasing noise* so later
//! queries are harder.

use crate::rng::{fill_gaussian, gaussian};
use crate::{z_normalize, Dataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vaq_linalg::Matrix;

/// Names of the five large-scale stand-ins, in paper order.
pub const LARGE_SCALE_NAMES: [&str; 5] =
    ["sift-like", "seismic-like", "sald-like", "deep-like", "astro-like"];

/// Specification for one large-scale synthetic dataset.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Dataset identifier.
    pub name: &'static str,
    /// Vector dimensionality.
    pub dim: usize,
    /// Power-law exponent for the latent variance profile.
    pub alpha: f64,
    /// Number of mixture components.
    pub clusters: usize,
    /// Scale of cluster centers relative to within-cluster spread.
    pub center_scale: f64,
    /// Post-processing applied after the latent mixture.
    pub post: Post,
}

/// Dataset-specific post-processing step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Post {
    /// Clip negatives to zero and shift (SIFT histograms are non-negative).
    ClipNonNegative,
    /// Normalize each vector to unit ℓ2 norm (DEEP embeddings).
    UnitNorm,
    /// Integrate into a random walk and smooth (SALD MRI series).
    SmoothWalk,
    /// Add sparse bursts over a noise floor (SEISMIC recordings).
    Bursts,
    /// Superimpose a low-frequency periodic carrier (ASTRO light curves).
    Periodic,
}

impl SyntheticSpec {
    /// 128-d SIFT-like descriptors: moderate spectrum, strong clusters.
    pub fn sift_like() -> Self {
        SyntheticSpec {
            name: "sift-like",
            dim: 128,
            alpha: 0.9,
            clusters: 64,
            center_scale: 1.6,
            post: Post::ClipNonNegative,
        }
    }

    /// 96-d DEEP-like CNN embeddings: mild spectrum, unit-normalized.
    pub fn deep_like() -> Self {
        SyntheticSpec {
            name: "deep-like",
            dim: 96,
            alpha: 0.6,
            clusters: 48,
            center_scale: 1.2,
            post: Post::UnitNorm,
        }
    }

    /// 128-d SALD-like smooth MRI series: steep spectrum.
    pub fn sald_like() -> Self {
        SyntheticSpec {
            name: "sald-like",
            dim: 128,
            alpha: 1.6,
            clusters: 32,
            center_scale: 1.0,
            post: Post::SmoothWalk,
        }
    }

    /// 256-d SEISMIC-like bursty noisy recordings: flat tail spectrum.
    pub fn seismic_like() -> Self {
        SyntheticSpec {
            name: "seismic-like",
            dim: 256,
            alpha: 0.35,
            clusters: 24,
            center_scale: 0.8,
            post: Post::Bursts,
        }
    }

    /// 256-d ASTRO-like light curves: periodic with medium decay.
    pub fn astro_like() -> Self {
        SyntheticSpec {
            name: "astro-like",
            dim: 256,
            alpha: 1.1,
            clusters: 32,
            center_scale: 1.0,
            post: Post::Periodic,
        }
    }

    /// All five specs in the paper's reporting order.
    pub fn all() -> Vec<SyntheticSpec> {
        vec![
            Self::sift_like(),
            Self::seismic_like(),
            Self::sald_like(),
            Self::deep_like(),
            Self::astro_like(),
        ]
    }

    /// Generates `n` base vectors and `n_queries` queries.
    ///
    /// Queries follow the paper's protocol: drawn from the same process,
    /// with noise that grows linearly from 0 to `max_query_noise` standard
    /// deviations across the query set ("progressively adding larger
    /// amounts of noise to increase their level of difficulty").
    pub fn generate(&self, n: usize, n_queries: usize, seed: u64) -> Dataset {
        let _ = checked_elems(checked_rows(n, n_queries), self.dim);
        let mut gen = RowGen::new(self, seed);
        let mut data = Matrix::zeros(n, self.dim);
        for i in 0..n {
            gen.emit(data.row_mut(i), 0.0);
        }
        let mut queries = Matrix::zeros(n_queries, self.dim);
        for qi in 0..n_queries {
            // Progressive query noise.
            let level = 0.35 * qi as f64 / n_queries.max(1) as f64;
            gen.emit(queries.row_mut(qi), level);
        }
        if self.z_normalized() {
            z_normalize(&mut data);
            z_normalize(&mut queries);
        }
        Dataset { name: self.name.to_string(), data, queries }
    }

    /// Block-iterator generation: the same base vectors as
    /// [`SyntheticSpec::generate`] (bit-identical for the same seed —
    /// the row process consumes the RNG in the same order), delivered as
    /// a stream of at-most-`block_rows` matrices so a multi-million-row
    /// dataset never has to exist in memory at once.
    pub fn generate_blocks(&self, n: usize, block_rows: usize, seed: u64) -> BlockIter {
        assert!(block_rows > 0, "block_rows must be positive");
        let _ = checked_elems(block_rows, self.dim);
        BlockIter { gen: RowGen::new(self, seed), remaining: n, block_rows }
    }

    /// The query set alone, matching `generate(n, n_queries, seed).queries`
    /// bit for bit: the base rows are advanced through the same RNG
    /// sequence without being materialized. O(`dim`) memory for the skip.
    pub fn generate_queries(&self, n: usize, n_queries: usize, seed: u64) -> Matrix {
        let mut gen = RowGen::new(self, seed);
        let mut skip = vec![0.0f32; self.dim];
        for _ in 0..n {
            gen.emit(&mut skip, 0.0);
        }
        let mut queries = Matrix::zeros(n_queries, self.dim);
        for qi in 0..n_queries {
            let level = 0.35 * qi as f64 / n_queries.max(1) as f64;
            gen.emit(queries.row_mut(qi), level);
        }
        if self.z_normalized() {
            z_normalize(&mut queries);
        }
        queries
    }

    /// Whether this spec's rows get per-row z-normalization (the series
    /// stand-ins). Per-row means blockwise generation matches the
    /// whole-matrix path exactly.
    fn z_normalized(&self) -> bool {
        matches!(self.post, Post::SmoothWalk | Post::Bursts | Post::Periodic)
    }

    fn post_process(&self, row: &mut [f32], rng: &mut StdRng) {
        match self.post {
            Post::ClipNonNegative => {
                for v in row.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            Post::UnitNorm => vaq_linalg::norms::normalize(row),
            Post::SmoothWalk => {
                // Integrate, then 5-tap moving average.
                let mut acc = 0.0f32;
                for v in row.iter_mut() {
                    acc += *v;
                    *v = acc;
                }
                smooth(row, 5);
            }
            Post::Bursts => {
                let n_bursts = rng.gen_range(1..4);
                for _ in 0..n_bursts {
                    let len = rng.gen_range(8..32.min(row.len()));
                    let start = rng.gen_range(0..row.len().saturating_sub(len).max(1));
                    let amp = 2.0 + 4.0 * rng.gen::<f32>();
                    let freq = 0.2 + 0.6 * rng.gen::<f32>();
                    for (t, v) in row[start..start + len].iter_mut().enumerate() {
                        let w = (std::f32::consts::PI * t as f32 / len as f32).sin();
                        *v += amp * w * (freq * t as f32).sin();
                    }
                }
            }
            Post::Periodic => {
                let period = 16.0 + 48.0 * rng.gen::<f32>();
                let phase = std::f32::consts::TAU * rng.gen::<f32>();
                let amp = 1.0 + 2.0 * rng.gen::<f32>();
                for (t, v) in row.iter_mut().enumerate() {
                    *v += amp * (std::f32::consts::TAU * t as f32 / period + phase).sin();
                }
            }
        }
    }
}

/// The streaming row generator behind [`SyntheticSpec::generate`] and
/// [`SyntheticSpec::generate_blocks`]: the latent model (power-law
/// scales, cluster centers, mixing angles) plus the RNG. Rows come out
/// of one fixed RNG sequence, so any consumer that asks for the same
/// rows in the same order sees identical bytes.
struct RowGen {
    spec: SyntheticSpec,
    rng: StdRng,
    scales: Vec<f32>,
    centers: Matrix,
    angles: Vec<f32>,
    latent: Vec<f32>,
}

impl RowGen {
    fn new(spec: &SyntheticSpec, seed: u64) -> RowGen {
        let mut rng = StdRng::seed_from_u64(seed ^ fxhash(spec.name));
        let d = spec.dim;

        // Per-dimension latent scales: power-law decay.
        let scales: Vec<f32> =
            (0..d).map(|i| ((i + 1) as f64).powf(-spec.alpha / 2.0) as f32).collect();

        // Cluster centers in latent space.
        let mut centers = Matrix::zeros(spec.clusters, d);
        for c in 0..spec.clusters {
            let row = centers.row_mut(c);
            fill_gaussian(&mut rng, row);
            for (v, &s) in row.iter_mut().zip(scales.iter()) {
                *v *= s * spec.center_scale as f32;
            }
        }

        // A fixed cheap "rotation": pairwise mixing of adjacent dimensions
        // with random angles. A full dense random rotation is O(n·d²) per
        // sample; two passes of Givens mixing de-axis-aligns the spectrum at
        // O(n·d) while preserving it exactly (orthogonal transform).
        let angles: Vec<f32> =
            (0..2 * d).map(|_| (rng.gen::<f64>() * std::f64::consts::TAU) as f32).collect();

        RowGen { spec: spec.clone(), rng, scales, centers, angles, latent: vec![0.0f32; d] }
    }

    /// Emits the next row into `out` (`noise > 0` marks a query row and
    /// adds that many standard deviations of Gaussian noise).
    fn emit(&mut self, out: &mut [f32], noise: f64) {
        fill_gaussian(&mut self.rng, &mut self.latent);
        for (v, &s) in self.latent.iter_mut().zip(self.scales.iter()) {
            *v *= s;
        }
        let c = self.rng.gen_range(0..self.spec.clusters);
        for (v, &cv) in self.latent.iter_mut().zip(self.centers.row(c).iter()) {
            *v += cv;
        }
        givens_mix(&mut self.latent, &self.angles);
        if noise > 0.0 {
            for v in self.latent.iter_mut() {
                *v += (noise * gaussian(&mut self.rng)) as f32;
            }
        }
        out.copy_from_slice(&self.latent);
        self.spec.post_process(out, &mut self.rng);
    }
}

/// Iterator over a synthetic dataset's base vectors in bounded blocks
/// (see [`SyntheticSpec::generate_blocks`]). Every block except possibly
/// the last holds exactly `block_rows` rows.
pub struct BlockIter {
    gen: RowGen,
    remaining: usize,
    block_rows: usize,
}

impl Iterator for BlockIter {
    type Item = Matrix;

    fn next(&mut self) -> Option<Matrix> {
        if self.remaining == 0 {
            return None;
        }
        let rows = self.remaining.min(self.block_rows);
        self.remaining -= rows;
        let mut block = Matrix::zeros(rows, self.gen.spec.dim);
        for i in 0..rows {
            self.gen.emit(block.row_mut(i), 0.0);
        }
        if self.gen.spec.z_normalized() {
            z_normalize(&mut block);
        }
        Some(block)
    }
}

/// Checked row-count funnel for `a + b` rows: aborts with a clear
/// message instead of wrapping into a tiny allocation.
fn checked_rows(a: usize, b: usize) -> usize {
    match a.checked_add(b) {
        Some(t) => t,
        None => panic!("{a} + {b} dataset rows overflow usize"),
    }
}

/// Checked `rows × dim` element-count funnel: every matrix allocation in
/// this module sizes through here so an absurd `n` fails loudly up front
/// rather than overflowing downstream arithmetic.
fn checked_elems(rows: usize, dim: usize) -> usize {
    match rows.checked_mul(dim) {
        Some(e) => e,
        None => panic!("dataset of {rows} rows × {dim} dims overflows usize"),
    }
}

/// Streams a spec's base vectors to an fvecs file in blocks of
/// `block_rows`, holding O(`block_rows × dim`) memory — the out-of-core
/// companion to [`SyntheticSpec::generate`]. The file's contents equal
/// `generate(n, 0, seed).data` written with [`crate::io::write_fvecs`].
pub fn stream_to_fvecs(
    spec: &SyntheticSpec,
    path: &std::path::Path,
    n: usize,
    block_rows: usize,
    seed: u64,
) -> std::io::Result<()> {
    let mut w = crate::io::FvecsWriter::create(path)?;
    for block in spec.generate_blocks(n, block_rows, seed) {
        w.append(&block)?;
    }
    w.finish()
}

/// Block-sampling streaming trainer entry point: draws about
/// `sample_rows` vectors from a file-resident fvecs dataset by reading
/// whole blocks in a seeded random order, so VarPCA and the k-means
/// dictionaries can fit from a sample without the full dataset ever
/// being resident. Memory is O(`sample_rows × dim` + one block).
pub fn sample_fvecs_blocks(
    path: &std::path::Path,
    dim: usize,
    sample_rows: usize,
    block_rows: usize,
    seed: u64,
) -> std::io::Result<Matrix> {
    assert!(block_rows > 0, "block_rows must be positive");
    let total = crate::io::fvecs_row_count(path, dim)?;
    let sample_rows = sample_rows.min(total);
    let nblocks = total.div_ceil(block_rows);
    // Seeded Fisher–Yates over the block order; only the prefix actually
    // read is ever visited.
    let mut order: Vec<usize> = (0..nblocks).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let mut sample = Matrix::zeros(sample_rows, dim);
    let mut filled = 0usize;
    for &b in &order {
        if filled >= sample_rows {
            break;
        }
        let start = b * block_rows;
        let rows = block_rows.min(total - start);
        let block = crate::io::read_fvecs_block(path, dim, start, rows)?;
        let take = rows.min(sample_rows - filled);
        for r in 0..take {
            sample.row_mut(filled + r).copy_from_slice(block.row(r));
        }
        filled += take;
    }
    Ok(sample)
}

/// Two passes of Givens rotations over adjacent dimension pairs —
/// an orthogonal mix that spreads each latent coordinate across several
/// output coordinates.
fn givens_mix(v: &mut [f32], angles: &[f32]) {
    let d = v.len();
    for (pair, &a) in (0..d / 2).zip(angles.iter()) {
        let (i, j) = (2 * pair, 2 * pair + 1);
        let (c, s) = (a.cos(), a.sin());
        let (x, y) = (v[i], v[j]);
        v[i] = c * x - s * y;
        v[j] = s * x + c * y;
    }
    for (pair, &a) in (0..(d - 1) / 2).zip(angles[d / 2..].iter()) {
        let (i, j) = (2 * pair + 1, 2 * pair + 2);
        let (c, s) = (a.cos(), a.sin());
        let (x, y) = (v[i], v[j]);
        v[i] = c * x - s * y;
        v[j] = s * x + c * y;
    }
}

/// In-place centered moving average with the given window.
fn smooth(row: &mut [f32], window: usize) {
    let n = row.len();
    if n == 0 || window <= 1 {
        return;
    }
    let half = window / 2;
    let src = row.to_vec();
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let sum: f32 = src[lo..hi].iter().sum();
        row[i] = sum / (hi - lo) as f32;
    }
}

/// Tiny deterministic string hash to decorrelate per-dataset seeds.
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_linalg::Pca;

    #[test]
    fn shapes_match_spec() {
        let ds = SyntheticSpec::sift_like().generate(500, 20, 1);
        assert_eq!(ds.data.shape(), (500, 128));
        assert_eq!(ds.queries.shape(), (20, 128));
        assert_eq!(ds.name, "sift-like");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SyntheticSpec::deep_like().generate(100, 5, 7);
        let b = SyntheticSpec::deep_like().generate(100, 5, 7);
        assert_eq!(a.data, b.data);
        assert_eq!(a.queries, b.queries);
        let c = SyntheticSpec::deep_like().generate(100, 5, 8);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn sift_like_is_non_negative() {
        let ds = SyntheticSpec::sift_like().generate(200, 5, 2);
        assert!(ds.data.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn deep_like_is_unit_norm() {
        let ds = SyntheticSpec::deep_like().generate(200, 5, 3);
        for row in ds.data.iter_rows() {
            let n = vaq_linalg::norms::norm(row);
            assert!((n - 1.0).abs() < 1e-4, "norm {n}");
        }
    }

    #[test]
    fn sald_like_spectrum_steeper_than_seismic() {
        // The defining property of the substitution: SALD's top PCs absorb a
        // much larger variance share than SEISMIC's.
        let sald = SyntheticSpec::sald_like().generate(1500, 1, 4);
        let seis = SyntheticSpec::seismic_like().generate(1500, 1, 4);
        let top_share = |m: &Matrix, top: usize| {
            let pca = Pca::fit(m).unwrap();
            pca.explained_variance_ratio().iter().take(top).sum::<f64>()
        };
        let sald_share = top_share(&sald.data, 5);
        let seis_share = top_share(&seis.data, 5);
        assert!(
            sald_share > seis_share + 0.2,
            "SALD top-5 share {sald_share:.3} should dwarf SEISMIC {seis_share:.3}"
        );
    }

    #[test]
    fn series_datasets_are_z_normalized() {
        let ds = SyntheticSpec::astro_like().generate(100, 5, 5);
        for row in ds.data.iter_rows() {
            let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn all_specs_generate() {
        for spec in SyntheticSpec::all() {
            let ds = spec.generate(50, 3, 11);
            assert_eq!(ds.len(), 50);
            assert!(ds.data.as_slice().iter().all(|v| v.is_finite()));
            assert!(ds.queries.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn block_generation_matches_generate_exactly() {
        for spec in [SyntheticSpec::sift_like(), SyntheticSpec::astro_like()] {
            let whole = spec.generate(257, 9, 42);
            let mut rebuilt: Vec<f32> = Vec::new();
            let mut blocks = 0;
            for block in spec.generate_blocks(257, 64, 42) {
                assert_eq!(block.cols(), spec.dim);
                rebuilt.extend_from_slice(block.as_slice());
                blocks += 1;
            }
            assert_eq!(blocks, 5, "257 rows in blocks of 64");
            assert_eq!(rebuilt, whole.data.as_slice(), "{} blocks diverge", spec.name);
            let queries = spec.generate_queries(257, 9, 42);
            assert_eq!(queries.as_slice(), whole.queries.as_slice(), "{} queries", spec.name);
        }
    }

    #[test]
    fn streamed_fvecs_round_trips_and_samples() {
        let spec = SyntheticSpec::deep_like();
        let dir = std::env::temp_dir().join("vaq-largescale-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("deep.fvecs");
        stream_to_fvecs(&spec, &path, 200, 33, 3).unwrap();
        assert_eq!(crate::io::fvecs_row_count(&path, spec.dim).unwrap(), 200);
        let whole = spec.generate(200, 0, 3).data;
        let read = crate::io::read_fvecs(&path, None).unwrap();
        assert_eq!(read.as_slice(), whole.as_slice());
        // Random-access block read agrees with the sequential reader.
        let block = crate::io::read_fvecs_block(&path, spec.dim, 150, 37).unwrap();
        assert_eq!(block.row(0), whole.row(150));
        assert_eq!(block.row(36), whole.row(186));
        // The block sampler returns the requested number of real rows.
        let sample = sample_fvecs_blocks(&path, spec.dim, 70, 32, 5).unwrap();
        assert_eq!(sample.shape(), (70, spec.dim));
        let rows: std::collections::HashSet<Vec<u32>> =
            whole.iter_rows().map(|r| r.iter().map(|v| v.to_bits()).collect()).collect();
        for row in sample.iter_rows() {
            let key: Vec<u32> = row.iter().map(|v| v.to_bits()).collect();
            assert!(rows.contains(&key), "sampled row not in the dataset");
        }
        // Reading past the end errors rather than fabricating rows.
        assert!(crate::io::read_fvecs_block(&path, spec.dim, 195, 10).is_err());
        assert!(crate::io::fvecs_row_count(&path, spec.dim + 1).is_err());
    }

    #[test]
    fn givens_mix_preserves_norm() {
        let mut v: Vec<f32> = (0..17).map(|i| (i as f32) - 8.0).collect();
        let before = vaq_linalg::norms::norm(&v);
        let angles: Vec<f32> = (0..34).map(|i| i as f32 * 0.37).collect();
        givens_mix(&mut v, &angles);
        let after = vaq_linalg::norms::norm(&v);
        assert!((before - after).abs() < 1e-4);
    }

    #[test]
    fn smooth_reduces_variation() {
        let mut jagged: Vec<f32> = (0..64).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let tv_before: f32 = jagged.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
        smooth(&mut jagged, 5);
        let tv_after: f32 = jagged.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
        assert!(tv_after < tv_before * 0.5);
    }
}
