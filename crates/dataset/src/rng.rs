//! Seeded random sampling helpers shared by the generators.

use rand::rngs::StdRng;
use rand::Rng;

/// Samples a standard normal via the Box–Muller transform.
///
/// `rand` (without `rand_distr`) only exposes uniform sampling; Box–Muller
/// is exact and needs no rejection loop.
#[inline]
pub fn gaussian(rng: &mut StdRng) -> f64 {
    // Guard against log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Fills `out` with i.i.d. `N(0, 1)` samples.
pub fn fill_gaussian(rng: &mut StdRng, out: &mut [f32]) {
    for v in out.iter_mut() {
        *v = gaussian(rng) as f32;
    }
}

/// Samples a uniform integer in `[0, n)`.
#[inline]
pub fn uniform_index(rng: &mut StdRng, n: usize) -> usize {
    rng.gen_range(0..n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(gaussian(&mut a), gaussian(&mut b));
        }
    }
}
