//! Exact k-nearest-neighbor ground truth.
//!
//! Recall and MAP (paper §IV "Evaluation Measures") are defined against the
//! *true* Euclidean neighbors, so every experiment needs an exact scan over
//! the base set per query. The scan is embarrassingly parallel over queries
//! and uses a bounded max-heap per query.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use vaq_linalg::{squared_euclidean, Matrix};

/// `(squared distance, index)` pair ordered for a max-heap of the current
/// k-best candidates.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapItem {
    dist: f32,
    idx: u32,
}

impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by distance; tie-break on index for determinism.
        // `total_cmp` so a NaN distance sorts above every finite one and
        // gets evicted first instead of corrupting the heap order.
        self.dist.total_cmp(&other.dist).then_with(|| self.idx.cmp(&other.idx))
    }
}

/// Exact k-NN of one query against all rows of `data`.
///
/// Returns indices sorted by increasing distance.
pub fn exact_knn_single(data: &Matrix, query: &[f32], k: usize) -> Vec<u32> {
    let k = k.min(data.rows());
    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(k + 1);
    for (i, row) in data.iter_rows().enumerate() {
        let d = squared_euclidean(row, query);
        if heap.len() < k {
            heap.push(HeapItem { dist: d, idx: i as u32 });
        } else if let Some(top) = heap.peek() {
            if d < top.dist {
                heap.pop();
                heap.push(HeapItem { dist: d, idx: i as u32 });
            }
        }
    }
    let mut items: Vec<HeapItem> = heap.into_vec();
    items.sort();
    items.into_iter().map(|it| it.idx).collect()
}

/// Exact k-NN for every query row, parallelized across queries.
///
/// Returns one index list per query, each sorted by increasing distance.
pub fn exact_knn(data: &Matrix, queries: &Matrix, k: usize) -> Vec<Vec<u32>> {
    assert_eq!(data.cols(), queries.cols(), "dimensionality mismatch");
    let nq = queries.rows();
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(nq.max(1));
    if workers <= 1 || nq < 4 {
        return (0..nq).map(|q| exact_knn_single(data, queries.row(q), k)).collect();
    }
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); nq];
    let chunk = nq.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut rest: &mut [Vec<u32>] = &mut out;
        for w in 0..workers {
            let start = w * chunk;
            if start >= nq {
                break;
            }
            let len = chunk.min(nq - start);
            let (mine, tail) = rest.split_at_mut(len);
            rest = tail;
            scope.spawn(move || {
                for (j, slot) in mine.iter_mut().enumerate() {
                    *slot = exact_knn_single(data, queries.row(start + j), k);
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Matrix {
        // Points at x = 0, 1, 2, ..., 9 on a line.
        Matrix::from_rows(&(0..10).map(|i| vec![i as f32, 0.0]).collect::<Vec<_>>())
    }

    #[test]
    fn finds_nearest_in_order() {
        let data = grid();
        let nn = exact_knn_single(&data, &[3.2, 0.0], 3);
        assert_eq!(nn, vec![3, 4, 2]);
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let data = grid();
        let nn = exact_knn_single(&data, &[0.0, 0.0], 100);
        assert_eq!(nn.len(), 10);
        assert_eq!(nn[0], 0);
        assert_eq!(nn[9], 9);
    }

    #[test]
    fn self_query_returns_self_first() {
        let data = grid();
        for i in 0..10 {
            let nn = exact_knn_single(&data, data.row(i), 1);
            assert_eq!(nn[0], i as u32);
        }
    }

    #[test]
    fn batch_matches_single() {
        let data = grid();
        let queries = Matrix::from_rows(&[vec![3.2, 0.0], vec![7.9, 0.0], vec![-1.0, 0.0]]);
        let batch = exact_knn(&data, &queries, 2);
        for (q, expect) in batch.iter().enumerate() {
            let single = exact_knn_single(&data, queries.row(q), 2);
            assert_eq!(*expect, single);
        }
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two points equidistant from the query: lower index wins.
        let data = Matrix::from_rows(&[vec![1.0], vec![-1.0], vec![1.0]]);
        let nn = exact_knn_single(&data, &[0.0], 3);
        assert_eq!(nn, vec![0, 1, 2]);
    }

    #[test]
    fn parallel_path_matches_serial() {
        let mut rows = Vec::new();
        let mut s = 5u64;
        for _ in 0..2000 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rows.push(vec![((s >> 33) as f32) / 1e9, ((s >> 13) as f32) / 1e9]);
        }
        let data = Matrix::from_rows(&rows);
        let queries = data.select_rows(&(0..16).collect::<Vec<_>>());
        let batch = exact_knn(&data, &queries, 5);
        for q in 0..16 {
            assert_eq!(batch[q], exact_knn_single(&data, queries.row(q), 5));
        }
    }
}
