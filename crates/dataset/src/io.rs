//! Readers and writers for the vector-file formats the paper's real
//! datasets ship in, so this reproduction runs on the originals when a
//! user has them:
//!
//! * **fvecs** — `[d: i32 little-endian][d × f32]` per vector (SIFT1B
//!   learn/base/query files, DEEP1B).
//! * **ivecs** — same layout with `i32` payloads (ground-truth files).
//! * **bvecs** — `[d: i32][d × u8]` per vector (SIFT1B base).
//! * **CSV** — one vector per line, comma or whitespace separated (UCR
//!   archive exports, with an optional leading class label).
//!
//! All readers take an optional `limit` so the billion-scale files can be
//! sampled without reading to the end.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;
use vaq_linalg::Matrix;

/// Typed-data error for a value that does not fit the destination type.
fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Validates a parsed per-vector dimension and widens it to `usize`.
/// The headers are attacker-controlled, so the bound check comes first
/// and the conversion is checked rather than cast.
fn checked_dim(d: i32, format: &str) -> io::Result<usize> {
    if d <= 0 || d > 1_000_000 {
        return Err(bad_data(format!("implausible {format} dimension {d}")));
    }
    usize::try_from(d).map_err(|_| bad_data(format!("implausible {format} dimension {d}")))
}

/// Converts a row length to the `i32` header the *vecs formats store.
fn header_dim(len: usize, format: &str) -> io::Result<i32> {
    i32::try_from(len)
        .map_err(|_| bad_data(format!("row of {len} values does not fit an {format} header")))
}

/// Reads up to `limit` vectors from an fvecs file (`None` = all).
pub fn read_fvecs(path: &Path, limit: Option<usize>) -> io::Result<Matrix> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut rows: Vec<Vec<f32>> = Vec::new();
    let mut dim_buf = [0u8; 4];
    loop {
        if let Some(l) = limit {
            if rows.len() >= l {
                break;
            }
        }
        match reader.read_exact(&mut dim_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let d = checked_dim(i32::from_le_bytes(dim_buf), "fvecs")?;
        let mut payload = vec![0u8; d * 4];
        reader.read_exact(&mut payload)?;
        let row: Vec<f32> =
            payload.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
        if let Some(first) = rows.first() {
            if first.len() != row.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "fvecs file mixes dimensionalities",
                ));
            }
        }
        rows.push(row);
    }
    Ok(Matrix::from_rows(&rows))
}

/// Writes a matrix as fvecs.
pub fn write_fvecs(path: &Path, m: &Matrix) -> io::Result<()> {
    let mut w = FvecsWriter::create(path)?;
    w.append(m)?;
    w.finish()
}

/// Incremental fvecs writer for streaming datasets that never exist in
/// memory whole: create once, append a block at a time, finish to flush.
pub struct FvecsWriter {
    w: BufWriter<File>,
}

impl FvecsWriter {
    pub fn create(path: &Path) -> io::Result<FvecsWriter> {
        Ok(FvecsWriter { w: BufWriter::new(File::create(path)?) })
    }

    /// Appends every row of `m` to the file.
    pub fn append(&mut self, m: &Matrix) -> io::Result<()> {
        for row in m.iter_rows() {
            self.w.write_all(&header_dim(row.len(), "fvecs")?.to_le_bytes())?;
            for &v in row {
                self.w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    pub fn finish(mut self) -> io::Result<()> {
        self.w.flush()
    }
}

/// The per-row byte stride of a fixed-dimension fvecs file (`4`-byte
/// header + `dim` little-endian `f32`s), overflow-checked.
fn fvecs_stride(dim: usize) -> io::Result<u64> {
    let dim = u64::try_from(dim).map_err(|_| bad_data(format!("implausible dimension {dim}")))?;
    dim.checked_mul(4)
        .and_then(|b| b.checked_add(4))
        .ok_or_else(|| bad_data(format!("implausible dimension {dim}")))
}

/// Number of `dim`-dimensional vectors in an fvecs file, from its length
/// alone. Errors when the length is not an exact multiple of the row
/// stride (a torn or mis-described file).
pub fn fvecs_row_count(path: &Path, dim: usize) -> io::Result<usize> {
    let len = std::fs::metadata(path)?.len();
    let stride = fvecs_stride(dim)?;
    if len % stride != 0 {
        return Err(bad_data(format!(
            "fvecs file of {len} bytes is not a whole number of {dim}-dim rows"
        )));
    }
    usize::try_from(len / stride).map_err(|_| bad_data("fvecs row count overflows".into()))
}

/// Reads rows `start..start + rows` of a fixed-dimension fvecs file by
/// seeking straight to them — the random-access block read behind the
/// block-sampling trainer. Every row's header is still validated against
/// `dim`, so a file that mixes dimensionalities is rejected, not
/// misparsed.
pub fn read_fvecs_block(path: &Path, dim: usize, start: usize, rows: usize) -> io::Result<Matrix> {
    use std::io::Seek;
    let stride = fvecs_stride(dim)?;
    let offset = u64::try_from(start)
        .ok()
        .and_then(|s| s.checked_mul(stride))
        .ok_or_else(|| bad_data(format!("fvecs block start {start} overflows")))?;
    let mut reader = BufReader::new(File::open(path)?);
    reader.seek(io::SeekFrom::Start(offset))?;
    let mut out = Matrix::zeros(rows, dim);
    let mut dim_buf = [0u8; 4];
    let mut payload =
        vec![0u8; dim.checked_mul(4).ok_or_else(|| bad_data("fvecs row overflows".into()))?];
    for r in 0..rows {
        reader.read_exact(&mut dim_buf)?;
        let d = checked_dim(i32::from_le_bytes(dim_buf), "fvecs")?;
        if d != dim {
            return Err(bad_data(format!("fvecs row {} is {d}-dim, expected {dim}", start + r)));
        }
        reader.read_exact(&mut payload)?;
        for (v, c) in out.row_mut(r).iter_mut().zip(payload.chunks_exact(4)) {
            *v = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        }
    }
    Ok(out)
}

/// Reads up to `limit` vectors from a bvecs file, widening `u8` to `f32`.
pub fn read_bvecs(path: &Path, limit: Option<usize>) -> io::Result<Matrix> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut rows: Vec<Vec<f32>> = Vec::new();
    let mut dim_buf = [0u8; 4];
    loop {
        if let Some(l) = limit {
            if rows.len() >= l {
                break;
            }
        }
        match reader.read_exact(&mut dim_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let d = checked_dim(i32::from_le_bytes(dim_buf), "bvecs")?;
        let mut payload = vec![0u8; d];
        reader.read_exact(&mut payload)?;
        rows.push(payload.iter().map(|&b| b as f32).collect());
    }
    Ok(Matrix::from_rows(&rows))
}

/// Reads up to `limit` integer vectors from an ivecs file (ground truth).
pub fn read_ivecs(path: &Path, limit: Option<usize>) -> io::Result<Vec<Vec<u32>>> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut rows: Vec<Vec<u32>> = Vec::new();
    let mut dim_buf = [0u8; 4];
    loop {
        if let Some(l) = limit {
            if rows.len() >= l {
                break;
            }
        }
        match reader.read_exact(&mut dim_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let d = checked_dim(i32::from_le_bytes(dim_buf), "ivecs")?;
        let mut payload = vec![0u8; d * 4];
        reader.read_exact(&mut payload)?;
        let row: Result<Vec<u32>, _> = payload
            .chunks_exact(4)
            .map(|c| {
                let v = i32::from_le_bytes([c[0], c[1], c[2], c[3]]);
                u32::try_from(v).map_err(|_| bad_data(format!("negative ivecs index {v}")))
            })
            .collect();
        rows.push(row?);
    }
    Ok(rows)
}

/// Writes ground-truth index lists as ivecs.
pub fn write_ivecs(path: &Path, rows: &[Vec<u32>]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for row in rows {
        w.write_all(&header_dim(row.len(), "ivecs")?.to_le_bytes())?;
        for &v in row {
            let i = i32::try_from(v)
                .map_err(|_| bad_data(format!("index {v} does not fit the ivecs i32 payload")))?;
            w.write_all(&i.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Reads a CSV/TSV of vectors, one per line. When `label_column` is true,
/// the first field of each line is treated as a class label and returned
/// separately (the UCR archive's export format).
pub fn read_csv(path: &Path, label_column: bool) -> io::Result<(Matrix, Vec<f32>)> {
    let reader = BufReader::new(File::open(path)?);
    let mut rows: Vec<Vec<f32>> = Vec::new();
    let mut labels: Vec<f32> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut fields = trimmed
            .split(|c: char| c == ',' || c == '\t' || c.is_whitespace())
            .filter(|f| !f.is_empty());
        if label_column {
            let lab = fields.next().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, format!("line {lineno}: empty"))
            })?;
            labels.push(lab.parse::<f32>().map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("line {lineno}: {e}"))
            })?);
        }
        let row: Result<Vec<f32>, _> = fields.map(|f| f.parse::<f32>()).collect();
        let row = row.map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {lineno}: {e}"))
        })?;
        if let Some(first) = rows.first() {
            if first.len() != row.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {lineno}: inconsistent width"),
                ));
            }
        }
        rows.push(row);
    }
    Ok((Matrix::from_rows(&rows), labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("vaq-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn fvecs_round_trip() {
        let m = Matrix::from_rows(&[vec![1.0, -2.5, 3.25], vec![0.0, 7.5, -0.125]]);
        let p = tmp("a.fvecs");
        write_fvecs(&p, &m).unwrap();
        let back = read_fvecs(&p, None).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn fvecs_limit_truncates() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let p = tmp("b.fvecs");
        write_fvecs(&p, &m).unwrap();
        let back = read_fvecs(&p, Some(2)).unwrap();
        assert_eq!(back.rows(), 2);
        assert_eq!(back.row(1), &[2.0]);
    }

    #[test]
    fn fvecs_rejects_garbage_dimension() {
        let p = tmp("c.fvecs");
        std::fs::write(&p, [0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4]).unwrap();
        assert!(read_fvecs(&p, None).is_err());
    }

    #[test]
    fn ivecs_round_trip() {
        let rows = vec![vec![5u32, 2, 9], vec![1u32, 0, 3]];
        let p = tmp("d.ivecs");
        write_ivecs(&p, &rows).unwrap();
        assert_eq!(read_ivecs(&p, None).unwrap(), rows);
    }

    #[test]
    fn bvecs_reads_bytes_as_floats() {
        let p = tmp("e.bvecs");
        // Two 3-d byte vectors.
        let mut bytes = Vec::new();
        for v in [[1u8, 2, 3], [250, 0, 128]] {
            bytes.extend_from_slice(&3i32.to_le_bytes());
            bytes.extend_from_slice(&v);
        }
        std::fs::write(&p, bytes).unwrap();
        let m = read_bvecs(&p, None).unwrap();
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[250.0, 0.0, 128.0]);
    }

    #[test]
    fn csv_with_labels() {
        let p = tmp("f.csv");
        std::fs::write(&p, "1,0.5,0.25\n2,1.5,1.25\n\n").unwrap();
        let (m, labels) = read_csv(&p, true).unwrap();
        assert_eq!(labels, vec![1.0, 2.0]);
        assert_eq!(m.row(1), &[1.5, 1.25]);
    }

    #[test]
    fn csv_without_labels_whitespace_separated() {
        let p = tmp("g.csv");
        std::fs::write(&p, "0.5 0.25\t0.75\n1.0 2.0 3.0\n").unwrap();
        let (m, labels) = read_csv(&p, false).unwrap();
        assert!(labels.is_empty());
        assert_eq!(m.shape(), (2, 3));
    }

    #[test]
    fn csv_rejects_ragged_rows() {
        let p = tmp("h.csv");
        std::fs::write(&p, "1,2\n1,2,3\n").unwrap();
        assert!(read_csv(&p, false).is_err());
    }
}
