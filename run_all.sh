#!/bin/sh
# Regenerates every table and figure at default scale. Single-threaded
# machine: expect ~1h total. Output tees to results/full_run.log.
set -x
for b in fig03_variance_profiles fig04_subspace_importance tab01_specs \
         fig01_quantizer_tradeoff fig06_hashing_quantization fig07_pruning_ablation \
         fig08_hw_accelerated fig09_adaptive_ablation tab02_ucr_sweep \
         fig10_critical_difference fig11_index_comparison fig12_hnsw_comparison \
         ablation_design_choices extension_vaq_ivf; do
  echo "===== $b ====="
  ./target/release/$b "$@" || echo "FAILED: $b"
done
